"""Worker-process observability spools: capture there, merge here.

A ``ProcessPoolExecutor`` worker cannot write into the parent's
observability session — so without help, ``scaltool profile --jobs N``
and ``--metrics-out`` only ever see main-process activity.  The engine
closes that gap with *spool files*: when the parent has an obs session
live, each worker run executes under a private session whose spans and
metrics are serialised to one JSONL file per run; after the batch, the
parent merges the spools back **in plan order**, so the merged session is
structurally identical to what a serial execution would have recorded
(same span paths, parenting, and start-order; only the timing values
differ).

Spool files exist only while a traced parallel batch is in flight, live
in a private temp directory, and are deleted after the merge.  When no
obs session is active and no trace context is attached, no spool
directory is ever created — disabled mode stays file-free.

Format: JSON lines — one ``meta`` object (pid, wall epoch, spec key),
then the worker session's span records in start order, then one
``metrics`` object holding the registry's raw dump, then (when the
worker sampled itself) one ``sampler`` object holding the folded-stack
:class:`~repro.obs.sampler.SampleProfile`.  Sampler profiles merge the
same way spans graft: the worker's span paths are re-parented under the
span open in the parent at merge time, so a worker's
``engine.execute/machine.run/...`` samples land on the exact span path
a serial execution would have attributed them to.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from pathlib import Path

from .logs import get_logger, kv
from .metrics import MetricsRegistry
from .runtime import ObsSession
from .sampler import SampleProfile
from .spans import SpanRecord, Tracer

__all__ = ["SpoolDir", "write_spool", "read_spool", "merge_spool"]

_log = get_logger("obs.spool")


class SpoolDir:
    """A private temp directory of per-run spool files, always cleaned up."""

    def __init__(self) -> None:
        self.root = Path(tempfile.mkdtemp(prefix="scaltool-spool-"))

    def path(self, index: int) -> Path:
        return self.root / f"{index:06d}.jsonl"

    def cleanup(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)


def write_spool(
    path: str | Path,
    session: ObsSession,
    meta: dict | None = None,
    sampler: SampleProfile | None = None,
) -> Path:
    """Serialise a worker session to ``path`` (meta, spans, metrics dump,
    and optionally the worker's folded-stack sampling profile)."""
    import os

    path = Path(path)
    lines = [
        json.dumps(
            {
                "kind": "meta",
                "pid": os.getpid(),
                "wall_epoch": session.tracer.wall_epoch,
                **{k: v for k, v in sorted((meta or {}).items())},
            },
            sort_keys=True,
        )
    ]
    for rec in session.tracer.in_start_order():
        lines.append(json.dumps(rec.to_dict(), sort_keys=True))
    lines.append(
        json.dumps({"kind": "metrics", **session.registry.dump()}, sort_keys=True)
    )
    if sampler is not None:
        lines.append(
            json.dumps({"kind": "sampler", "profile": sampler.to_dict()}, sort_keys=True)
        )
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text("\n".join(lines) + "\n")
    os.replace(tmp, path)
    return path


def read_spool(
    path: str | Path,
) -> tuple[dict, list[SpanRecord], dict, SampleProfile | None]:
    """``(meta, spans in start order, metrics dump, sampler profile or
    None)`` from one spool file."""
    meta: dict = {}
    spans: list[SpanRecord] = []
    metrics: dict = {}
    sampler: SampleProfile | None = None
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        kind = obj.get("kind")
        if kind == "meta":
            meta = obj
        elif kind == "sampler":
            sampler = SampleProfile.from_dict(obj.get("profile", {}))
        elif kind == "span":
            spans.append(
                SpanRecord(
                    name=obj["name"],
                    path=obj["path"],
                    depth=obj["depth"],
                    seq=obj["seq"],
                    duration_s=obj["duration_s"],
                    attrs=dict(obj.get("attrs", {})),
                    start_s=float(obj.get("start_s", 0.0)),
                )
            )
        elif kind == "metrics":
            metrics = {k: v for k, v in obj.items() if k != "kind"}
    return meta, spans, metrics, sampler


def merge_spool(
    path: str | Path,
    tracer: Tracer,
    registry: MetricsRegistry,
    profile: SampleProfile | None = None,
) -> bool:
    """Merge one worker spool into the parent session; False if unreadable.

    Spans graft under the currently open parent span (the engine keeps
    ``engine.run`` open while merging, exactly where a serial execution
    would have nested them); worker start offsets are re-anchored via the
    wall-clock epochs of the two sessions.  With a ``profile``, a spooled
    worker sampling profile merges into it under the same open-span
    prefix the grafted spans receive.  A missing or corrupt spool is
    never fatal — the run record itself already made it back in-band.
    """
    try:
        meta, spans, metrics, worker_profile = read_spool(path)
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        _log.warning("worker spool unreadable, dropping %s", kv(path=path, reason=exc))
        return False
    offset = float(meta.get("wall_epoch", tracer.wall_epoch)) - tracer.wall_epoch
    stack = getattr(tracer, "_stack", None)
    span_prefix = stack[-1].path if stack else ""
    tracer.graft(spans, start_offset=offset)
    registry.merge_dump(metrics)
    if profile is not None and worker_profile is not None:
        profile.merge(worker_profile, span_prefix=span_prefix)
    return True
