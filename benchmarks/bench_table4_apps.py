"""Table 4: characteristics of the applications analysed.

Regenerates the application-characterisation table (scalability, load
balance, data-set size, model of parallelism) from the actual campaigns
and ssusage-style measurements, and checks it against the paper's rows.
"""

import pytest

from repro.viz.tables import format_table
from repro.workloads import Hydro2d, Swim, T3dheat


def characterize(analysis, campaign, workload_cls):
    spd = dict(analysis.curves.speedups())
    return {
        "Application": workload_cls.name,
        "Source": workload_cls.source,
        "What It Does": workload_cls.what_it_does,
        "Speedup@16": round(spd[16], 1),
        "Speedup@32": round(spd[32], 1),
        "Data Set (paper)": f"{workload_cls.paper_footprint_bytes / 2**20:.1f}MB",
        "Data Set (scaled)": f"{campaign.s0 / 2**10:.0f}KB",
        "Model of Parallelism": workload_cls.parallel_model,
    }


def test_table4(benchmark, emit, t3dheat_analysis, t3dheat_campaign,
                hydro2d_analysis, hydro2d_campaign, swim_analysis, swim_campaign):
    def regenerate():
        return [
            characterize(t3dheat_analysis, t3dheat_campaign, T3dheat),
            characterize(hydro2d_analysis, hydro2d_campaign, Hydro2d),
            characterize(swim_analysis, swim_campaign, Swim),
        ]

    rows = benchmark(regenerate)
    emit("table4_applications", format_table(rows, title="Table 4: application characteristics"))

    by_name = {r["Application"]: r for r in rows}
    # paper: T3dheat "excellent scalability up to 16, poor beyond 16"
    assert by_name["t3dheat"]["Speedup@16"] > 12
    assert by_name["t3dheat"]["Speedup@32"] < 1.6 * by_name["t3dheat"]["Speedup@16"]
    # paper: Hydro2d "modest scalability (9 at 32 processors)"
    assert 6 < by_name["hydro2d"]["Speedup@32"] < 20
    # paper: Swim "good scalability (24 at 32 processors)"
    assert by_name["swim"]["Speedup@32"] > 20
    # parallel models as in the paper
    assert "PCF" in by_name["t3dheat"]["Model of Parallelism"]
    assert "DOACROSS" in by_name["swim"]["Model of Parallelism"]
