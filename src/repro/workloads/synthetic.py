"""Fully parameterised synthetic workload.

Used by the conceptual-figure benches (Figures 1–4), ablations, and many
integration tests: every bottleneck the model isolates has a direct knob —

* ``working_set_ratio`` — footprint relative to one L2 (insufficient
  caching space);
* ``barriers_per_iter`` — synchronization intensity;
* ``imbalance_amp`` — per-(cpu, iteration) work spread;
* ``sharing_frac`` — fraction of references that touch a globally shared
  region with writes (true sharing / ntsyn contamination);
* ``serial_frac`` — fraction of iteration work done by cpu 0 alone.

With all knobs at zero the workload is an embarrassingly parallel sweep,
which property tests use as the "no bottleneck" baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..errors import WorkloadError
from ..trace.events import Phase, Segment, make_segment
from ..trace.generators import random_access, sweep
from ..trace.synth import concat_traces
from ..units import MB
from .base import Workload

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.system import DsmMachine

__all__ = ["SyntheticWorkload"]


class SyntheticWorkload(Workload):
    """One knob per bottleneck."""

    name = "synthetic"
    cpi0 = 1.2
    m_frac = 0.35
    paper_footprint_bytes = 8 * MB

    def __init__(
        self,
        iters: int = 4,
        barriers_per_iter: int = 2,
        imbalance_amp: float = 0.0,
        sharing_frac: float = 0.0,
        serial_frac: float = 0.0,
        refs_per_block: int = 4,
        seed: int = 1234,
    ) -> None:
        super().__init__(iters=iters, seed=seed)
        if barriers_per_iter < 1:
            raise WorkloadError("barriers_per_iter must be >= 1")
        if not (0.0 <= imbalance_amp < 1.0):
            raise WorkloadError("imbalance_amp must be in [0, 1)")
        if not (0.0 <= sharing_frac <= 0.5):
            raise WorkloadError("sharing_frac must be in [0, 0.5]")
        if not (0.0 <= serial_frac < 0.5):
            raise WorkloadError("serial_frac must be in [0, 0.5)")
        self.barriers_per_iter = barriers_per_iter
        self.imbalance_amp = imbalance_amp
        self.sharing_frac = sharing_frac
        self.serial_frac = serial_frac
        self.refs_per_block = refs_per_block

    def describe_params(self) -> dict:
        return {
            "iters": self.iters,
            "barriers_per_iter": self.barriers_per_iter,
            "imbalance_amp": self.imbalance_amp,
            "sharing_frac": self.sharing_frac,
            "serial_frac": self.serial_frac,
            "refs_per_block": self.refs_per_block,
            "seed": self.seed,
        }

    def build(self, machine: "DsmMachine", size_bytes: int) -> Iterator[Phase]:
        nb = self.blocks_for(machine, size_bytes)
        n = machine.n_processors
        shared_blocks = max(n, nb // 16) if self.sharing_frac > 0 else 0
        data = machine.allocator.alloc("data", max(n, nb - shared_blocks))
        shared = machine.allocator.alloc("shared", shared_blocks) if shared_blocks else None

        init_segs: list[Segment | None] = []
        for cpu in range(n):
            frags = [
                sweep(data.slice_for(cpu, n), refs_per_block=1, write_frac=1.0,
                      rng=np.random.default_rng(self.seed + cpu))
            ]
            if shared is not None and cpu == 0:
                frags.append(
                    sweep(shared.block_range(), refs_per_block=1, write_frac=1.0,
                          rng=np.random.default_rng(self.seed))
                )
            a, w = concat_traces(*frags)
            init_segs.append(make_segment(a, w, m_frac=self.m_frac))
        yield Phase(name="init", segments=init_segs, barrier=True)

        jitter_rng = np.random.default_rng(self.seed * 65537)
        per_cpu_blocks = len(data.slice_for(0, n))
        phase_refs = per_cpu_blocks * self.refs_per_block
        iter_instructions = int(self.barriers_per_iter * phase_refs / self.m_frac)

        for it in range(self.iters):
            jitter = jitter_rng.uniform(-self.imbalance_amp, self.imbalance_amp, size=n)
            for b in range(self.barriers_per_iter):
                segs: list[Segment | None] = []
                for cpu in range(n):
                    rng = np.random.default_rng(self.seed * 101 + it * 13 + b * 3 + cpu)
                    frags = [
                        sweep(data.slice_for(cpu, n), refs_per_block=self.refs_per_block,
                              write_frac=0.3, rng=rng)
                    ]
                    if shared is not None and self.sharing_frac > 0:
                        n_shared = int(phase_refs * self.sharing_frac)
                        if n_shared:
                            frags.append(
                                random_access(shared.block_range(), n_shared,
                                              write_frac=0.3, rng=rng)
                            )
                    a, w = concat_traces(*frags)
                    extra = int(len(a) / self.m_frac * max(0.0, jitter[cpu]))
                    segs.append(make_segment(a, w, m_frac=self.m_frac, extra_instructions=extra))
                yield Phase(name=f"work_{it}_{b}", segments=segs, barrier=True)

            serial_instr = int(self.serial_frac * iter_instructions)
            if serial_instr > 0:
                empty = np.empty(0, dtype=np.int64)
                segs = [None] * n
                segs[0] = Segment(empty, np.empty(0, dtype=bool), serial_instr)
                yield Phase(name=f"serial_{it}", segments=segs, barrier=True)
