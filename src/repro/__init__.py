"""Scal-Tool reproduction: pinpointing and quantifying scalability
bottlenecks in DSM multiprocessors (Solihin, Lam, Torrellas — SC 1999).

The package has three layers:

* **substrate** — a DSM multiprocessor simulator standing in for the SGI
  Origin 2000 (:mod:`repro.machine`), the workload models of the paper's
  applications (:mod:`repro.workloads`), and the SGI tool equivalents
  (:mod:`repro.tools`);
* **measurement** — the Table-3 campaign runner producing one counter
  file per run (:mod:`repro.runner`);
* **the contribution** — Scal-Tool's empirical CPI-breakdown model
  (:mod:`repro.core`), which isolates insufficient caching space,
  synchronization, and load imbalance from counter files alone, plus the
  what-if engine and the sharing extension.

Quickstart::

    from repro import quick_analysis

    analysis, campaign = quick_analysis("swim", processor_counts=(1, 2, 4, 8))
    print(analysis.report())
"""

# Single source of truth for the package version: pyproject.toml reads it
# back through `[tool.setuptools.dynamic]`, and `scaltool --version` prints
# it.  Defined before the subpackage imports because lineage records stamp
# results with it (`repro.obs.lineage` imports it back from here).
__version__ = "1.1.0"

from .core import ScalTool, ScalToolAnalysis, WhatIf, validate_mp
from .machine import DsmMachine, MachineConfig, origin2000_full, origin2000_scaled
from .runner import CampaignConfig, RunRecord, ScalToolCampaign, run_experiment
from .workloads import available_workloads, make_workload

__all__ = [
    "ScalTool",
    "ScalToolAnalysis",
    "WhatIf",
    "validate_mp",
    "DsmMachine",
    "MachineConfig",
    "origin2000_full",
    "origin2000_scaled",
    "CampaignConfig",
    "ScalToolCampaign",
    "RunRecord",
    "run_experiment",
    "make_workload",
    "available_workloads",
    "quick_analysis",
]


def quick_analysis(
    workload_name: str,
    processor_counts: tuple[int, ...] = (1, 2, 4, 8),
    s0: int | None = None,
    cache_dir: str | None = None,
    jobs: int = 1,
    **workload_params,
):
    """Run a full campaign + analysis for a named workload.

    Returns ``(analysis, campaign)``.  The campaign is cached on disk when
    ``cache_dir`` is given (or $SCALTOOL_CACHE_DIR is set); ``jobs > 1``
    fans the runs out over that many worker processes.
    """
    from .runner.cache import cached_campaign
    from .runner.engine import default_executor

    workload = make_workload(workload_name, **workload_params)
    size = s0 if s0 is not None else workload.default_size()
    config = CampaignConfig(s0=size, processor_counts=tuple(processor_counts))
    campaign = cached_campaign(
        workload, config, cache_dir=cache_dir, executor=default_executor(jobs)
    )
    analysis = ScalTool(campaign).analyze()
    return analysis, campaign
