"""The persistent job store: one atomic JSON file per job.

Jobs live under ``<cache root>/service/jobs/<job id>.json`` and are
rewritten (write-then-rename, the same idiom as
:class:`~repro.runner.engine.RunCache`) on every state transition, so

* a restarted service recovers exactly the jobs that were queued or
  running when it died (interrupted jobs are re-queued, finished jobs
  keep serving ``status`` / ``result`` idempotently), and
* the store can neither lose nor duplicate an entry: the job id *is*
  the file name, and a job id is a content address over the canonical
  request (:func:`~repro.service.requests.request_fingerprint`).

A corrupt job file is never fatal: it is logged, counted
(``service.store.corrupt``), and skipped.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..errors import ServiceError
from ..obs import runtime as obs
from ..obs.logs import get_logger, kv

__all__ = ["Job", "JobStore", "JOB_STATES", "ACTIVE_STATES", "TERMINAL_STATES"]

_log = get_logger("service.store")

#: Job lifecycle: queued -> running -> done | failed.
JOB_STATES = ("queued", "running", "done", "failed")
ACTIVE_STATES = ("queued", "running")
TERMINAL_STATES = ("done", "failed")


@dataclass
class Job:
    """One submitted request and everything that happened to it."""

    id: str
    kind: str
    payload: dict  # canonical payload (defaults resolved)
    priority: int = 5
    state: str = "queued"
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    attempts: int = 0
    error: str | None = None
    result: dict | None = None  # RequestResult.to_dict() once done
    trace_id: str | None = None  # distributed trace this job belongs to
    trace_span: str | None = None  # span id of the service.job span
    trace_parent: str | None = None  # caller's span id (from traceparent)

    def summary(self) -> dict:
        """The status view: everything but the (possibly large) result."""
        out = asdict(self)
        out.pop("result")
        out["has_result"] = self.result is not None
        return out

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Job":
        try:
            data = json.loads(text)
            if data["state"] not in JOB_STATES:
                raise ValueError(f"unknown state {data['state']!r}")
            return cls(**data)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"bad job record: {exc}") from exc


class JobStore:
    """Directory-backed job persistence with atomic per-job writes."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, job_id: str) -> Path:
        return self.root / f"{job_id}.json"

    def put(self, job: Job) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(job.id)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        tmp.write_text(job.to_json() + "\n")
        os.replace(tmp, path)
        return path

    def get(self, job_id: str) -> Job | None:
        """The stored job, or None (missing *or* unreadable)."""
        try:
            text = self.path(job_id).read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._note_corrupt(job_id, exc)
            return None
        try:
            return Job.from_json(text)
        except ServiceError as exc:
            self._note_corrupt(job_id, exc)
            return None

    def load_all(self, predicate=None) -> list[Job]:
        """Every readable job, oldest first (corrupt entries are skipped).

        ``predicate`` filters by job *id* before the file is read — the
        multi-worker service passes its shard-ownership test so each
        worker recovers only the jobs the ring routes to it, even though
        all workers share one store directory.
        """
        jobs = []
        if self.root.is_dir():
            for path in sorted(self.root.glob("j*.json")):
                if predicate is not None and not predicate(path.stem):
                    continue
                job = self.get(path.stem)
                if job is not None:
                    jobs.append(job)
        return sorted(jobs, key=lambda j: j.created)

    def _note_corrupt(self, job_id: str, exc: Exception) -> None:
        obs.registry().inc("service.store.corrupt")
        _log.warning("job store entry unreadable %s", kv(job=job_id, reason=exc))

    # -- health -------------------------------------------------------------------

    def check_writable(self) -> str | None:
        """None when the store can take writes, else the failure reason.

        Creates the backing directory (and probes an actual write) so a
        service can detect a mis-mounted or read-only cache root at
        startup and degrade to 503s instead of crashing on first submit.
        """
        probe = self.root / f".writable.{os.getpid()}"
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            probe.write_text("ok")
            probe.unlink()
        except OSError as exc:
            return f"{type(exc).__name__}: {exc}"
        return None

    # -- per-job trace timelines --------------------------------------------------
    #
    # Timelines live in a subdirectory (not next to the j*.json job files,
    # which load_all() globs) and hold the job's distributed span tree as
    # recorded at finish time.

    def timeline_path(self, job_id: str) -> Path:
        return self.root / "traces" / f"{job_id}.json"

    def put_timeline(self, job_id: str, spans: list[dict]) -> Path:
        path = self.timeline_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        tmp.write_text(json.dumps({"job": job_id, "spans": spans}, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    def get_timeline(self, job_id: str) -> list[dict] | None:
        """The persisted span dicts, or None (missing *or* unreadable)."""
        try:
            data = json.loads(self.timeline_path(job_id).read_text())
            spans = data["spans"]
            if not isinstance(spans, list):
                raise ValueError("spans is not a list")
            return spans
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            self._note_corrupt(f"{job_id} (timeline)", exc)
            return None
