"""Segments and phases."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.events import Phase, Segment, make_segment


def seg(n=10, n_instr=None):
    return Segment(
        np.arange(n, dtype=np.int64),
        np.zeros(n, dtype=bool),
        n_instructions=n_instr if n_instr is not None else n * 3,
    )


class TestSegment:
    def test_basic(self):
        s = seg(10)
        assert s.n_refs == 10
        assert s.m_frac == pytest.approx(1 / 3)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TraceError):
            Segment(np.arange(5, dtype=np.int64), np.zeros(4, dtype=bool), 10)

    def test_instructions_below_refs_rejected(self):
        with pytest.raises(TraceError):
            seg(10, n_instr=5)

    def test_negative_block_rejected(self):
        with pytest.raises(TraceError):
            Segment(np.array([-1], dtype=np.int64), np.zeros(1, dtype=bool), 5)

    def test_2d_rejected(self):
        with pytest.raises(TraceError):
            Segment(np.zeros((2, 2), dtype=np.int64), np.zeros(4, dtype=bool), 10)

    def test_footprint(self):
        s = Segment(np.array([1, 1, 2, 3, 3], dtype=np.int64), np.zeros(5, dtype=bool), 20)
        assert s.footprint_blocks() == 3

    def test_empty_segment_ok(self):
        s = Segment(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool), 100)
        assert s.n_refs == 0 and s.m_frac == 0.0

    def test_arrays_coerced(self):
        s = Segment(np.array([1, 2]), np.array([0, 1]), 10)
        assert s.addrs.dtype == np.int64 and s.writes.dtype == bool


class TestMakeSegment:
    def test_derives_instructions(self):
        a = np.arange(35, dtype=np.int64)
        w = np.zeros(35, dtype=bool)
        s = make_segment(a, w, m_frac=0.35)
        assert s.n_instructions == 100

    def test_extra_instructions(self):
        a = np.arange(10, dtype=np.int64)
        s = make_segment(a, np.zeros(10, dtype=bool), m_frac=0.5, extra_instructions=30)
        assert s.n_instructions == 50

    def test_bad_m_frac(self):
        a = np.arange(4, dtype=np.int64)
        with pytest.raises(TraceError):
            make_segment(a, np.zeros(4, dtype=bool), m_frac=0.0)
        with pytest.raises(TraceError):
            make_segment(a, np.zeros(4, dtype=bool), m_frac=1.5)


class TestPhase:
    def test_totals(self):
        p = Phase(name="p", segments=[seg(10), None, seg(20)])
        assert p.n_processors == 3
        assert p.total_refs == 30
        assert p.total_instructions == 90

    def test_all_idle_without_barrier_rejected(self):
        with pytest.raises(TraceError):
            Phase(name="p", segments=[None, None], barrier=False)

    def test_all_idle_with_barrier_ok(self):
        Phase(name="p", segments=[None, None], barrier=True)

    def test_empty_slots_rejected(self):
        with pytest.raises(TraceError):
            Phase(name="p", segments=[])
