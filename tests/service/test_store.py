"""Job model + persistent job store: atomicity, idempotency, corruption."""

import json
import threading

import pytest

from repro.errors import ServiceError
from repro.obs import runtime as obs_runtime
from repro.service.store import ACTIVE_STATES, JOB_STATES, TERMINAL_STATES, Job, JobStore


def job(job_id="j0123456789abcdef", **kw):
    defaults = dict(kind="analyze", payload={"workload": "synthetic"})
    defaults.update(kw)
    return Job(id=job_id, **defaults)


class TestJob:
    def test_state_taxonomy(self):
        assert set(ACTIVE_STATES) | set(TERMINAL_STATES) == set(JOB_STATES)
        assert not set(ACTIVE_STATES) & set(TERMINAL_STATES)

    def test_json_roundtrip(self):
        original = job(state="done", result={"output": "x\n", "data": {}}, attempts=2)
        restored = Job.from_json(original.to_json())
        assert restored == original

    def test_summary_drops_result(self):
        j = job(state="done", result={"output": "y" * 10000, "data": {}})
        summary = j.summary()
        assert "result" not in summary
        assert summary["has_result"] is True
        assert summary["state"] == "done"

    def test_bad_json_rejected(self):
        with pytest.raises(ServiceError):
            Job.from_json("{not json")

    def test_unknown_state_rejected(self):
        data = json.loads(job().to_json())
        data["state"] = "exploded"
        with pytest.raises(ServiceError):
            Job.from_json(json.dumps(data))

    def test_missing_field_rejected(self):
        with pytest.raises(ServiceError):
            Job.from_json('{"id": "j1"}')


class TestJobStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        store.put(job())
        loaded = store.get("j0123456789abcdef")
        assert loaded is not None
        assert loaded.kind == "analyze"

    def test_get_missing_is_none(self, tmp_path):
        assert JobStore(tmp_path / "jobs").get("jdeadbeef") is None

    def test_put_overwrites_atomically(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        j = job()
        store.put(j)
        j.state = "done"
        path = store.put(j)
        assert store.get(j.id).state == "done"
        # No leftover temp files from the write-then-rename.
        assert list(path.parent.glob("*.tmp*")) == []

    def test_corrupt_entry_skipped_and_counted(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        store.put(job())
        (tmp_path / "jobs" / "jcorrupt.json").write_text("{torn write")
        session = obs_runtime.enable()
        try:
            assert store.get("jcorrupt") is None
            loaded = store.load_all()
        finally:
            obs_runtime.disable()
        assert [j.id for j in loaded] == ["j0123456789abcdef"]
        assert session.registry.counter("service.store.corrupt") >= 1

    def test_load_all_sorted_by_created(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        store.put(job("j2222222222222222", created=200.0))
        store.put(job("j1111111111111111", created=100.0))
        assert [j.id for j in store.load_all()] == [
            "j1111111111111111",
            "j2222222222222222",
        ]

    def test_concurrent_puts_never_tear(self, tmp_path):
        # Several threads rewriting the same job id: every observed file
        # content must be a complete record (the bug class the thread-id
        # suffix on temp names exists to prevent).
        store = JobStore(tmp_path / "jobs")
        errors = []

        def writer(n):
            try:
                for i in range(20):
                    store.put(job(state="queued", attempts=n * 100 + i))
            except Exception as exc:  # pragma: no cover - the failure we test for
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        final = store.get("j0123456789abcdef")
        assert final is not None and final.state == "queued"
