"""Figure 8: speedups for Hydro2d.

Paper: "the Origin 2000 delivers only modest speedups" (~9 at 32
processors), throttled by large serial sections / load imbalance.
"""

from repro.viz.ascii_chart import ascii_chart

from .conftest import speedup_table


def test_fig8(benchmark, emit, hydro2d_analysis):
    series = benchmark(hydro2d_analysis.curves.speedups)
    chart = ascii_chart(
        {"speedup": series, "ideal": [(n, float(n)) for n, _ in series]},
        title="Figure 8: Hydro2d speedup",
    )
    emit("fig8_hydro2d_speedup", chart + "\n\n" + speedup_table(hydro2d_analysis))

    spd = dict(series)
    assert 6 < spd[32] < 20  # modest (paper: ~9)
    assert spd[32] < 0.6 * 32  # well below linear
    # sub-linear from early on, unlike T3dheat's cache-boosted start
    assert spd[4] < 4.5
