"""Segment-level analysis (Section 2.1)."""

import pytest

from repro.core import ScalTool
from repro.core.segments import analyze_segments, phase_names
from repro.errors import InsufficientDataError


@pytest.fixture(scope="module")
def analysis(mini_campaign):
    return ScalTool(mini_campaign).analyze()


class TestPhaseNames:
    def test_lists_phases(self, mini_campaign):
        names = phase_names(mini_campaign)
        assert names[0] == "init"
        assert any(n.startswith("work_") for n in names)

    def test_missing_count_rejected(self, mini_campaign):
        with pytest.raises(InsufficientDataError):
            phase_names(mini_campaign, n=128)


class TestSegments:
    GROUPS = {"init": "init", "work": "work_*"}

    def test_decomposition_covers_run(self, analysis, mini_campaign):
        seg = analyze_segments(analysis, mini_campaign, self.GROUPS)
        for n in (1, 2, 4):
            total = sum(seg.at(name, n).cycles for name in self.GROUPS)
            base = mini_campaign.base_runs()[n].counters.cycles
            assert total == pytest.approx(base, rel=1e-6)

    def test_components_sum_within_cycles(self, analysis, mini_campaign):
        seg = analyze_segments(analysis, mini_campaign, self.GROUPS)
        for b in seg.breakdowns:
            assert b.modeled_cycles + b.residual_cycles >= b.cycles - 1e-6
            assert b.compute_cycles >= 0
            assert 0.0 <= b.residual_fraction <= 1.0 or b.modeled_cycles > b.cycles

    def test_work_segment_dominates(self, analysis, mini_campaign):
        seg = analyze_segments(analysis, mini_campaign, self.GROUPS)
        assert seg.at("work", 4).cycles > seg.at("init", 4).cycles

    def test_init_segment_memory_bound(self, analysis, mini_campaign):
        # init is the cold first-touch sweep: memory stalls out of compute
        seg = analyze_segments(analysis, mini_campaign, self.GROUPS)
        init = seg.at("init", 1)
        work = seg.at("work", 1)
        init_mem_share = init.memory_stall_cycles / init.cycles
        work_mem_share = work.memory_stall_cycles / work.cycles
        assert init_mem_share > work_mem_share

    def test_dominant_cost_named(self, analysis, mini_campaign):
        seg = analyze_segments(analysis, mini_campaign, self.GROUPS)
        assert seg.dominant_cost("work", 4) in (
            "compute",
            "L2-hit stalls",
            "memory stalls",
            "synchronization",
            "residual (imbalance + unmodeled)",
        )

    def test_summary_renders(self, analysis, mini_campaign):
        seg = analyze_segments(analysis, mini_campaign, self.GROUPS)
        text = seg.summary()
        assert "segment" in text and "work" in text

    def test_unmatched_pattern_rejected(self, analysis, mini_campaign):
        with pytest.raises(InsufficientDataError):
            analyze_segments(analysis, mini_campaign, {"nope": "zzz_*"})

    def test_empty_groups_rejected(self, analysis, mini_campaign):
        with pytest.raises(InsufficientDataError):
            analyze_segments(analysis, mini_campaign, {})

    def test_subset_of_counts(self, analysis, mini_campaign):
        seg = analyze_segments(analysis, mini_campaign, self.GROUPS, processor_counts=[2])
        assert {b.n_processors for b in seg.breakdowns} == {2}


class TestMultiplexedCampaign:
    def test_degraded_analysis_still_runs(self, mini_campaign):
        from repro.tools.perfex import multiplex_campaign

        degraded = multiplex_campaign(mini_campaign, events_per_slice=4)
        analysis = ScalTool(degraded).analyze()
        exact = ScalTool(mini_campaign).analyze()
        # conclusions stay in the same ballpark despite approximate counters
        for n in (1, 2, 4):
            assert analysis.curves.base[n] == pytest.approx(exact.curves.base[n], rel=0.5)

    def test_kernels_stay_exact(self, mini_campaign):
        from repro.tools.perfex import multiplex_campaign

        degraded = multiplex_campaign(mini_campaign)
        for exact_rec, deg_rec in zip(mini_campaign.records, degraded.records):
            if exact_rec.role == "sync_kernel":
                assert deg_rec.counters == exact_rec.counters
                assert deg_rec.per_cpu


class TestMarkdownExport:
    def test_export_markdown(self, analysis):
        from repro.core.report import export_markdown

        doc = export_markdown(analysis)
        assert doc.startswith("# Scal-Tool analysis: synthetic")
        assert "## Model parameters" in doc
        assert "## Bottleneck curves" in doc
        assert "| n |" in doc
        assert "Dominant bottleneck" in doc

    def test_markdown_tables_well_formed(self, analysis):
        from repro.core.report import export_markdown

        doc = export_markdown(analysis)
        for line in doc.splitlines():
            if line.startswith("|") and not set(line) <= {"|", "-", " "}:
                assert line.endswith("|")
