"""End-to-end distributed tracing through the live service.

The tentpole's acceptance test: a job submitted via :class:`ServiceClient`
against a live server running the engine with ``--jobs 2`` must yield a
*single rooted span tree* — client root, HTTP handling, queue wait,
batching, and the worker-process run spans, merged across process
boundaries — readable back via ``GET /v1/jobs/<id>/trace`` and rendered
by ``scaltool obs trace``.  Plus: valid Prometheus exposition on
``/metrics``, disabled-mode propagation adds nothing, and an unwritable
job store degrades to 503s instead of crashing.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request

import pytest

from repro import cli
from repro.errors import JobNotFoundError, ServiceError, StoreUnavailableError
from repro.service.client import ServiceClient
from repro.service.core import AnalysisService, ServiceConfig
from repro.service.http import ServiceServer

from .conftest import WARM_PAYLOAD


def _tree_check(spans: list[dict]) -> dict:
    """One root, every other span's parent present; returns span-by-id."""
    by_id = {s["span_id"]: s for s in spans}
    assert len(by_id) == len(spans), "span ids must be unique within the trace"
    roots = [s for s in spans if s["parent_id"] not in by_id]
    assert len(roots) == 1, f"expected one root, got {[(s['name']) for s in roots]}"
    return by_id


class TestTracedJobEndToEnd:
    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        """One cold traced campaign on a ``--jobs 2`` engine, shared by checks."""
        srv = ServiceServer(
            ServiceConfig(
                cache_dir=tmp_path_factory.mktemp("trace-e2e"), jobs=2, workers=2
            ),
            port=0,
        ).start()
        client = ServiceClient(srv.url, timeout=60)
        try:
            submitted = client.submit("campaign", WARM_PAYLOAD)
            view = client.wait(submitted["id"], timeout=300)
            tree = client.trace(submitted["id"])
            metrics_text = client.metrics()
            health = client.health()
        finally:
            srv.shutdown(drain_timeout=60)
        return {
            "submitted": submitted,
            "view": view,
            "tree": tree,
            "metrics": metrics_text,
            "health": health,
            "url": srv.url,
        }

    def test_submit_returns_trace_id(self, traced_run):
        assert len(traced_run["submitted"]["trace_id"]) == 32
        assert traced_run["view"]["state"] == "done"

    def test_single_rooted_tree_across_processes(self, traced_run):
        tree = traced_run["tree"]
        assert tree["complete"] is True
        assert tree["trace_id"] == traced_run["submitted"]["trace_id"]
        spans = tree["spans"]
        by_id = _tree_check(spans)
        names = {s["name"] for s in spans}
        # the full path: client -> HTTP -> queue -> batcher -> engine
        assert {
            "client.submit", "http.request", "service.job", "service.queue.wait",
            "service.batch", "engine.run", "engine.execute",
        } <= names
        root = next(s for s in spans if s["parent_id"] not in by_id)
        assert root["name"] == "client.submit"

    def test_worker_run_spans_carry_worker_pids(self, traced_run):
        executes = [s for s in traced_run["tree"]["spans"] if s["name"] == "engine.execute"]
        assert len(executes) >= 2
        worker_pids = {s["pid"] for s in executes}
        # ProcessPoolExecutor(jobs=2): the runs happened off the server process.
        assert os.getpid() not in worker_pids
        assert 1 <= len(worker_pids) <= 2

    def test_result_view_carries_timeline(self, traced_run):
        timeline = traced_run["view"]["timeline"]
        assert timeline["trace_id"] == traced_run["submitted"]["trace_id"]
        assert {s["span_id"] for s in timeline["spans"]} == {
            s["span_id"] for s in traced_run["tree"]["spans"]
        }

    def test_metrics_exposition_has_serving_histograms(self, traced_run):
        text = traced_run["metrics"]
        assert "# TYPE scaltool_service_queue_wait_seconds histogram" in text
        assert 'scaltool_service_queue_wait_seconds_bucket{le="+Inf"}' in text
        assert "# TYPE scaltool_service_job_seconds histogram" in text
        assert "scaltool_service_jobs_submitted_total 1" in text
        assert "scaltool_uptime_seconds" in text

    def test_health_endpoint_shape(self, traced_run):
        health = traced_run["health"]
        assert health["status"] == "ok"
        assert health["store"]["writable"] is True
        assert health["jobs"]["done"] == 1
        assert health["queue_depth"] == 0 and health["inflight"] == 0
        assert health["uptime_seconds"] > 0


class TestObsTraceCli:
    def test_cli_renders_tree_with_critical_path(self, warm_root, capsys):
        srv = ServiceServer(
            ServiceConfig(cache_dir=warm_root, jobs=2, workers=2), port=0
        ).start()
        try:
            client = ServiceClient(srv.url, timeout=30)
            submitted = client.submit("analyze", WARM_PAYLOAD)
            client.wait(submitted["id"], timeout=120)
            rc = cli.main(["obs", "trace", submitted["id"], "--url", srv.url])
            out = capsys.readouterr().out
            assert rc == 0
            assert f"job {submitted['id']}" in out
            assert "client.submit" in out and "service.job" in out
            assert "*" in out  # critical path marker
            rc = cli.main(["obs", "trace", submitted["id"], "--url", srv.url, "--json"])
            parsed = json.loads(capsys.readouterr().out)
            assert parsed["complete"] is True
        finally:
            srv.shutdown(drain_timeout=30)


class TestDisabledPropagation:
    def test_untraced_submit_adds_no_headers_or_spans(self, tmp_path, stub_requests):
        srv = ServiceServer(
            ServiceConfig(cache_dir=tmp_path, workers=1, batch_window=0.0), port=0
        ).start()
        try:
            client = ServiceClient(srv.url, timeout=10, trace=False)
            assert client.trace_enabled is False
            submitted = client.submit("stub", {"name": "a"})
            assert "trace_id" not in submitted
            client.wait(submitted["id"], timeout=10)
            with pytest.raises(ServiceError, match="without trace propagation"):
                client.trace(submitted["id"])
            assert len(srv.service.traces) == 0
            assert not srv.service.store.timeline_path(submitted["id"]).exists()
        finally:
            srv.shutdown(drain_timeout=10)

    def test_env_kill_switch(self, monkeypatch, tmp_path, stub_requests):
        monkeypatch.setenv("SCALTOOL_TRACE", "0")
        assert ServiceClient("http://x").trace_enabled is False
        # explicit argument beats the environment
        assert ServiceClient("http://x", trace=True).trace_enabled is True


class TestDegradedStore:
    def test_unwritable_store_degrades_to_503(self, tmp_path, stub_requests):
        # Occupy the store's parent path with a regular file: mkdir fails
        # even for root, unlike permission bits.
        (tmp_path / "service").write_text("not a directory")
        srv = ServiceServer(
            ServiceConfig(cache_dir=tmp_path, workers=1, batch_window=0.0), port=0
        ).start()
        try:
            client = ServiceClient(srv.url, timeout=10)
            health = client.health()
            assert health["status"] == "degraded"
            assert health["store"]["writable"] is False
            assert health["store"]["error"]
            # submit -> 503 with a JSON body naming the degradation
            body = json.dumps({"kind": "stub", "payload": {"name": "a"}}).encode()
            req = urllib.request.Request(
                srv.url + "/v1/jobs", data=body, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(req)
            assert exc_info.value.code == 503
            payload = json.loads(exc_info.value.read().decode())
            assert payload["status"] == "degraded"
            assert payload["store"]["writable"] is False
            # the client maps the degraded 503 to its own error type
            with pytest.raises(StoreUnavailableError):
                client.submit("stub", {"name": "a"})
            # read endpoints keep answering
            assert client.jobs() == []
            with pytest.raises(JobNotFoundError):
                client.status("j00000000")
        finally:
            srv.shutdown(drain_timeout=10)

    def test_service_submit_raises_store_unavailable(self, tmp_path, stub_requests):
        (tmp_path / "service").write_text("not a directory")
        service = AnalysisService(
            ServiceConfig(cache_dir=tmp_path, workers=1, batch_window=0.0)
        ).start()
        try:
            assert service.degraded is not None
            with pytest.raises(StoreUnavailableError):
                service.submit("stub", {"name": "a"})
        finally:
            service.close(drain=False, timeout=10.0)
