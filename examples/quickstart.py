#!/usr/bin/env python3
"""Quickstart: analyse a synthetic workload's scalability bottlenecks.

Runs the Table-3 measurement campaign for a small synthetic workload with
every bottleneck knob turned on (insufficient caching space, barriers,
load imbalance, a serial section), then lets Scal-Tool isolate and
quantify each one from the hardware counters alone.

Run:  python examples/quickstart.py
"""

from repro import quick_analysis
from repro.core import validate_mp


def main() -> None:
    print("Running the measurement campaign (a few seconds)...\n")
    analysis, campaign = quick_analysis(
        "synthetic",
        processor_counts=(1, 2, 4, 8),
        iters=3,
        barriers_per_iter=4,
        imbalance_amp=0.25,
        serial_frac=0.04,
    )

    # The full analysis report: estimated model parameters, the cache-space
    # decomposition, sync/imbalance fractions, and the bottleneck curves.
    print(analysis.report())

    # The tool's headline answer.
    n = analysis.curves.processor_counts[-1]
    print(
        f"\nAt {n} processors the dominant bottleneck is: "
        f"{analysis.dominant_bottleneck(n)}"
    )

    # Validate the MP estimate against the simulated speedshop profiler
    # (exactly the check the paper runs in Figures 7/10/13).
    print()
    print(validate_mp(analysis, campaign).summary())


if __name__ == "__main__":
    main()
