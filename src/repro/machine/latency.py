"""Interconnect latency studies: analytic tm(n) and measured topology surveys.

The paper's tm(n) grows with machine size because remote accesses cross
more router hops.  This module provides

* :func:`analytic_tm` — the closed-form expectation
  ``t_mem + 2 * mean_distance * t_hop * remote_fraction``, the knob behind
  Figure 4's growth curve, and
* :func:`topology_survey` — a measured comparison: the memory-latency
  kernel run under round-robin placement (so accesses really go remote)
  on each topology, reporting the observed mean L2-miss latency.

Both support the Section 2.6 "interconnection network" what-if: replace
tm(n)'s growth law with another topology's and re-evaluate the model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError
from .config import InterconnectConfig, MachineConfig, MemoryConfig
from .interconnect import Interconnect

__all__ = ["analytic_tm", "TopologyPoint", "topology_survey"]


def analytic_tm(cfg: MachineConfig, n_processors: int, remote_fraction: float = 1.0) -> float:
    """Expected L2-miss service latency on ``cfg``'s network at ``n`` cpus.

    ``remote_fraction`` is the share of misses whose home is a uniformly
    random node (first-touch codes have a small one; round-robin placement
    approaches (n-1)/n).  Prefetching and dirty interventions are not
    modelled here — this is the paper-style first-order estimate.
    """
    if not (0.0 <= remote_fraction <= 1.0):
        raise ConfigError("remote_fraction must be in [0, 1]")
    ic = Interconnect(cfg.interconnect, n_processors)
    return cfg.timing.t_mem + 2.0 * ic.mean_distance() * cfg.timing.t_hop * remote_fraction


@dataclass(frozen=True)
class TopologyPoint:
    """One (topology, n) measurement of the survey."""

    topology: str
    n_processors: int
    mean_distance: float
    diameter: int
    analytic_tm: float
    measured_tm: float

    def row(self) -> dict:
        return {
            "topology": self.topology,
            "n": self.n_processors,
            "mean hops": self.mean_distance,
            "diameter": self.diameter,
            "analytic tm": self.analytic_tm,
            "measured tm": self.measured_tm,
        }


def topology_survey(
    base_cfg: MachineConfig,
    processor_counts: tuple[int, ...] = (2, 8, 32),
    topologies: tuple[str, ...] = ("hypercube", "mesh", "ring", "crossbar"),
    kernel_refs: int = 4000,
    footprint_factor: int = 8,
    executor=None,
    cache=None,
) -> list[TopologyPoint]:
    """Measure mean L2-miss latency per topology and processor count.

    Runs the pointer-chase kernel over a footprint ``footprint_factor``
    times the L2 with round-robin page placement (every miss has a
    uniformly-placed home) and compares the simulator's observed mean miss
    latency against :func:`analytic_tm`.  Every (topology, n) cell is an
    independent :class:`~repro.runner.engine.RunSpec`, so the survey can
    fan out over a parallel executor and memoise per cell in a run cache.
    """
    # Lazy: repro.runner.engine imports machine.config from this package.
    from ..runner.engine import RunSpec, SerialExecutor
    from ..workloads.kernels import MemoryLatencyKernel

    cells: list[tuple[str, int, MachineConfig]] = []
    specs: list[RunSpec] = []
    for topology in topologies:
        for n in processor_counts:
            cfg = replace(
                base_cfg,
                n_processors=n,
                interconnect=InterconnectConfig(topology=topology,
                                                bristle=base_cfg.interconnect.bristle),
                memory=MemoryConfig(page_size=base_cfg.memory.page_size,
                                    placement="round_robin"),
            )
            wl = MemoryLatencyKernel(n_refs=kernel_refs, passes=1)
            size = footprint_factor * cfg.l2.size * n
            cells.append((topology, n, cfg))
            specs.append(RunSpec.compile(wl, size, n, machine=cfg))

    executor = executor or SerialExecutor()
    records = executor.run(specs, cache=cache)

    points: list[TopologyPoint] = []
    for (topology, n, cfg), rec in zip(cells, records):
        misses = rec.counters.l2_misses
        measured = rec.ground_truth.memory_stall_cycles / misses if misses else 0.0
        ic = Interconnect(cfg.interconnect, n)
        points.append(
            TopologyPoint(
                topology=topology,
                n_processors=n,
                mean_distance=ic.mean_distance(),
                diameter=ic.diameter(),
                analytic_tm=analytic_tm(cfg, n, remote_fraction=(n - 1) / n),
                measured_tm=measured,
            )
        )
    return points
