"""perfex emulation: counter report formatting, parsing, and multiplexing.

The real ``perfex`` wraps a program run and prints the R10000 event
counters.  Two modes matter here:

* *direct* mode counts two chosen events exactly;
* ``perfex -a`` multiplexes all 32 events over the run in time slices and
  scales each count by the inverse of its sampling fraction — cheap but
  approximate.  :func:`multiplex_counters` reproduces that approximation
  from a run's per-phase counter deltas, so experiments can quantify the
  counter-fidelity error the paper's methodology tolerates.

The text format is the library's on-disk interchange format for counter
measurements ("one output file per run", as the paper counts resources);
:func:`parse_report` round-trips it.
"""

from __future__ import annotations

import json

from ..errors import CounterFormatError
from ..machine.counters import CounterSet, R10K_EVENTS

__all__ = ["format_report", "parse_report", "multiplex_counters", "multiplex_campaign"]

_HEADER = "# perfex report"
_META_PREFIX = "# meta: "


def format_report(
    counters: CounterSet,
    per_cpu: list[CounterSet] | None = None,
    metadata: dict | None = None,
) -> str:
    """Render a perfex-style text report.

    ``metadata`` (workload name, data-set size, processor count, parameters)
    is embedded as a JSON comment so a report file is self-describing.
    """
    lines = [_HEADER]
    if metadata:
        lines.append(_META_PREFIX + json.dumps(metadata, sort_keys=True))
    lines.append("")
    lines.append("Summary of all processors:")
    lines.extend(_event_lines(counters))
    if per_cpu:
        for cpu, c in enumerate(per_cpu):
            lines.append("")
            lines.append(f"Processor {cpu}:")
            lines.extend(_event_lines(c))
    lines.append("")
    return "\n".join(lines)


def _event_lines(counters: CounterSet) -> list[str]:
    rounded = counters.rounded()
    out = []
    for event in sorted(R10K_EVENTS):
        desc, field = R10K_EVENTS[event]
        value = int(getattr(rounded, field))
        out.append(f"{event:3d} {desc:.<55s} {value:>16d}")
    return out


def parse_report(text: str) -> tuple[dict, CounterSet, list[CounterSet]]:
    """Parse a report produced by :func:`format_report`.

    Returns ``(metadata, totals, per_cpu)``; ``per_cpu`` is empty when the
    report only carried the summary.
    """
    head = [line.strip() for line in text.splitlines()[:10]]
    if _HEADER not in head:
        raise CounterFormatError("not a perfex report (missing header)")
    metadata: dict = {}
    totals: CounterSet | None = None
    per_cpu: list[CounterSet] = []
    current: CounterSet | None = None

    field_of_event = {event: field for event, (_, field) in R10K_EVENTS.items()}

    for raw in text.splitlines():
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith(_META_PREFIX):
            try:
                metadata = json.loads(line[len(_META_PREFIX):])
            except json.JSONDecodeError as exc:
                raise CounterFormatError(f"bad metadata JSON: {exc}") from exc
            continue
        if line.startswith("#"):
            continue
        if line.startswith("Summary"):
            totals = CounterSet()
            current = totals
            continue
        if line.startswith("Processor"):
            current = CounterSet()
            per_cpu.append(current)
            continue
        # Event line: "<num> <desc dots> <value>"
        parts = line.split()
        if len(parts) < 3:
            raise CounterFormatError(f"unparseable line: {line!r}")
        try:
            event = int(parts[0])
            value = float(parts[-1])
        except ValueError as exc:
            raise CounterFormatError(f"unparseable line: {line!r}") from exc
        if event not in field_of_event:
            raise CounterFormatError(f"unknown event number {event}")
        if current is None:
            raise CounterFormatError("event line before any section header")
        setattr(current, field_of_event[event], value)

    if totals is None:
        raise CounterFormatError("report has no summary section")
    return metadata, totals, per_cpu


def multiplex_counters(
    phase_counters: list[tuple[str, CounterSet]],
    events_per_slice: int = 2,
    seed: int = 0,
) -> CounterSet:
    """Emulate ``perfex -a``: 2 hardware counters time-multiplexed.

    The run's phases play the role of time slices.  Events are grouped
    into ``ceil(n_events / events_per_slice)`` groups; slice *i* counts
    only group ``i mod n_groups``, and each event's total is scaled by
    ``n_slices / n_slices_counted`` — exactly the estimate the real tool
    reports.  The error vs the exact counts shrinks as phases get more
    homogeneous; the cpi0-estimation ablation uses this to show the model
    tolerates multiplexed inputs.

    ``seed`` rotates which group goes first, modelling the arbitrary
    alignment of slices to program phases.
    """
    if events_per_slice < 1:
        raise CounterFormatError("events_per_slice must be >= 1")
    if not phase_counters:
        raise CounterFormatError("no phase counters to multiplex")

    fields = [field for _, (_, field) in sorted(R10K_EVENTS.items())]
    n_groups = -(-len(fields) // events_per_slice)
    groups = [fields[i * events_per_slice : (i + 1) * events_per_slice] for i in range(n_groups)]

    n_slices = len(phase_counters)
    counted = CounterSet()
    slices_per_field: dict[str, int] = {f: 0 for f in fields}
    for i, (_, delta) in enumerate(phase_counters):
        group = groups[(i + seed) % n_groups]
        for f in group:
            setattr(counted, f, getattr(counted, f) + getattr(delta, f))
            slices_per_field[f] += 1

    out = CounterSet()
    for f in fields:
        seen = slices_per_field[f]
        if seen == 0:
            # Fewer slices than groups: report the unscaled total of zero,
            # as the real tool would (the event was never scheduled).
            continue
        setattr(out, f, getattr(counted, f) * (n_slices / seen))
    return out


def multiplex_campaign(campaign, events_per_slice: int = 2, seed: int = 0):
    """Degrade every record of a campaign to ``perfex -a`` fidelity.

    Returns a new :class:`~repro.runner.campaign.CampaignData` whose total
    counters are the multiplexed estimates (per-cpu counters are dropped:
    a multiplexed session reports only totals, and per-cpu multiplexing
    would pretend to more fidelity than the mode has).  Records without
    per-phase deltas are kept exact.  Used by the counter-fidelity
    ablation: how well does Scal-Tool hold up on approximate counters?
    """
    from ..runner.campaign import CampaignData
    from ..runner.records import RunRecord

    degraded = []
    for i, rec in enumerate(campaign.records):
        if not rec.role.startswith("app") or not rec.phase_counters:
            # Micro-kernels are tiny: direct (exact) counting is free, so a
            # real methodology would never multiplex them — and the spin
            # kernel's per-cpu counters are required by cpi_imb.
            degraded.append(rec)
            continue
        counters = multiplex_counters(
            rec.phase_counters, events_per_slice=events_per_slice, seed=seed + i
        )
        degraded.append(
            RunRecord(
                workload=rec.workload,
                params=rec.params,
                size_bytes=rec.size_bytes,
                n_processors=rec.n_processors,
                role=rec.role,
                machine=rec.machine,
                counters=counters,
                per_cpu=[],
                wall_cycles=rec.wall_cycles,
                phase_counters=[],
                ground_truth=rec.ground_truth,
            )
        )
    return CampaignData(workload=campaign.workload, s0=campaign.s0, records=degraded)
