"""Contention-oriented workloads: lock-based regions and false sharing.

The paper's applications synchronise with barriers; its method section
nevertheless covers lock-based codes ("If the application has locks, we
need to separately compute the cpi_syn of a kernel of locks and count at
run-time the number of locks executed") and its future work covers
true/false sharing.  These two workloads exercise those paths:

* :class:`LockedRegions` — parallel sweeps punctuated by critical
  sections protected by fetchop locks (a shared reduction / task-queue
  idiom).  Every acquire/release is a fetchop, so event 31 keeps working
  as the ntsyn source, and lock *contention* shows up as synchronization
  cycles (mp_lock_try is in the paper's sync-routine list).
* :class:`FalseSharingWorkload` — processors repeatedly write interleaved
  elements of a shared region such that every cache line ping-pongs
  between owners.  At block granularity this is exactly the
  line-level effect of false sharing: heavy invalidation traffic and a
  badly contaminated event 31 — the stress test for the Section 6
  extension.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..errors import WorkloadError
from ..trace.events import Phase, Segment, make_segment
from ..trace.generators import sweep
from ..units import MB
from .base import Workload

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.system import DsmMachine

__all__ = ["LockedRegions", "FalseSharingWorkload"]


class LockedRegions(Workload):
    """Parallel sweeps plus lock-protected critical sections."""

    name = "locked_regions"
    cpi0 = 1.2
    m_frac = 0.35
    paper_footprint_bytes = 8 * MB
    parallel_model = "MP directives with critical sections"
    what_it_does = "Parallel sweeps with a lock-protected shared reduction"

    def __init__(
        self,
        iters: int = 4,
        locks_per_iter: int = 2,
        cs_instructions: int = 400,
        refs_per_block: int = 6,
        seed: int = 1234,
    ) -> None:
        super().__init__(iters=iters, seed=seed)
        if locks_per_iter < 1:
            raise WorkloadError("locks_per_iter must be >= 1")
        if cs_instructions < 0:
            raise WorkloadError("cs_instructions must be >= 0")
        self.locks_per_iter = locks_per_iter
        self.cs_instructions = cs_instructions
        self.refs_per_block = refs_per_block

    def describe_params(self) -> dict:
        return {
            "iters": self.iters,
            "locks_per_iter": self.locks_per_iter,
            "cs_instructions": self.cs_instructions,
            "refs_per_block": self.refs_per_block,
            "seed": self.seed,
        }

    def build(self, machine: "DsmMachine", size_bytes: int) -> Iterator[Phase]:
        nb = self.blocks_for(machine, size_bytes)
        n = machine.n_processors
        data = machine.allocator.alloc("data", nb)
        lock = machine.sync.allocate_variable("reduction_lock")

        init_segs: list[Segment | None] = []
        for cpu in range(n):
            a, w = sweep(data.slice_for(cpu, n), refs_per_block=1, write_frac=1.0,
                         rng=np.random.default_rng(self.seed + cpu))
            init_segs.append(make_segment(a, w, m_frac=self.m_frac))
        yield Phase(name="init", segments=init_segs, barrier=True)

        for it in range(self.iters):
            for step in range(self.locks_per_iter):
                segs: list[Segment | None] = []
                for cpu in range(n):
                    rng = np.random.default_rng(self.seed * 53 + it * 11 + step * 3 + cpu)
                    a, w = sweep(data.slice_for(cpu, n), refs_per_block=self.refs_per_block,
                                 write_frac=0.3, rng=rng)
                    segs.append(make_segment(a, w, m_frac=self.m_frac))
                # The sweep, then everyone funnels through the critical
                # section (handled by the machine between phases).
                yield Phase(name=f"sweep_{it}_{step}", segments=segs, barrier=False)
                # Lock passage is expressed as a zero-work phase whose
                # synchronization the machine performs via lock_section.
                machine.sync.lock_section(
                    lock, machine.clocks, self.cpi0, self.cs_instructions
                )
                yield Phase(
                    name=f"join_{it}_{step}",
                    segments=[
                        Segment(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool), 1)
                        for _ in range(n)
                    ],
                    barrier=True,
                )


class FalseSharingWorkload(Workload):
    """Line ping-pong: every block written by every processor each sweep."""

    name = "falseshare"
    cpi0 = 1.2
    m_frac = 0.35
    paper_footprint_bytes = 12 * MB
    parallel_model = "MP directives with DOACROSS (cyclic schedule)"
    what_it_does = "Cyclic-scheduled updates causing line-level false sharing"

    def __init__(
        self,
        iters: int = 4,
        shared_frac: float = 0.25,
        refs_per_block: int = 4,
        seed: int = 1234,
    ) -> None:
        super().__init__(iters=iters, seed=seed)
        if not (0.0 < shared_frac <= 1.0):
            raise WorkloadError("shared_frac must be in (0, 1]")
        self.shared_frac = shared_frac
        self.refs_per_block = refs_per_block

    def describe_params(self) -> dict:
        return {
            "iters": self.iters,
            "shared_frac": self.shared_frac,
            "refs_per_block": self.refs_per_block,
            "seed": self.seed,
        }

    def build(self, machine: "DsmMachine", size_bytes: int) -> Iterator[Phase]:
        nb = self.blocks_for(machine, size_bytes)
        n = machine.n_processors
        nb_shared = max(1, int(nb * self.shared_frac))
        private = machine.allocator.alloc("private", max(n, nb - nb_shared))
        shared = machine.allocator.alloc("shared", nb_shared)

        init_segs: list[Segment | None] = []
        for cpu in range(n):
            a, w = sweep(private.slice_for(cpu, n), refs_per_block=1, write_frac=1.0,
                         rng=np.random.default_rng(self.seed + cpu))
            init_segs.append(make_segment(a, w, m_frac=self.m_frac))
        yield Phase(name="init", segments=init_segs, barrier=True)

        shared_blocks = np.arange(shared.base_block, shared.end_block, dtype=np.int64)
        for it in range(self.iters):
            segs: list[Segment | None] = []
            for cpu in range(n):
                rng = np.random.default_rng(self.seed * 71 + it * 13 + cpu)
                a_priv, w_priv = sweep(
                    private.slice_for(cpu, n), refs_per_block=self.refs_per_block,
                    write_frac=0.3, rng=rng,
                )
                # Cyclic schedule: every processor updates "its" elements of
                # every shared line — at line granularity, everyone
                # read-modify-writes every block (x[i] += ...), rotated so
                # the interleaving differs per cpu.  The read pulls the line
                # SHARED, the write upgrades it: the classic ping-pong that
                # both invalidates the other holders and pollutes event 31.
                rotated = np.roll(shared_blocks, -cpu * max(1, len(shared_blocks) // n))
                a_sh = np.repeat(rotated, 2)
                w_sh = np.tile(np.array([False, True]), len(rotated))
                a = np.concatenate([a_priv, a_sh])
                w = np.concatenate([w_priv, w_sh])
                segs.append(make_segment(a, w, m_frac=self.m_frac))
            yield Phase(name=f"update_{it}", segments=segs, barrier=True)
