"""Diagnostic snapshots of machine state (occupancy, directory, placement).

These are debugging/inspection aids, not part of the measured interface:
Scal-Tool never sees them.  They power the examples' "machine report" and
several integration tests (e.g. checking that first-touch placement really
homes each partition at its sweeping processor).
"""

from __future__ import annotations

from dataclasses import dataclass

from .system import DsmMachine

__all__ = ["MachineSnapshot", "snapshot"]


@dataclass(frozen=True)
class MachineSnapshot:
    """Point-in-time summary of one machine's caches, directory, and memory."""

    n_processors: int
    l1_occupancy: list[float]
    l2_occupancy: list[float]
    directory_entries: int
    pages_assigned: int
    home_histogram: list[int]
    mean_network_distance: float
    diameter: int

    def describe(self) -> str:
        lines = [
            f"processors            : {self.n_processors}",
            f"directory entries     : {self.directory_entries}",
            f"pages assigned        : {self.pages_assigned}",
            f"home histogram        : {self.home_histogram}",
            f"mean network distance : {self.mean_network_distance:.2f} hops",
            f"network diameter      : {self.diameter} hops",
        ]
        for cpu, (o1, o2) in enumerate(zip(self.l1_occupancy, self.l2_occupancy)):
            lines.append(f"cpu {cpu:2d} occupancy      : L1 {o1:6.1%}  L2 {o2:6.1%}")
        return "\n".join(lines)


def snapshot(machine: DsmMachine) -> MachineSnapshot:
    """Capture the current state of ``machine``."""
    homes = machine.memory.home_histogram()
    return MachineSnapshot(
        n_processors=machine.n_processors,
        l1_occupancy=[h.l1.occupancy for h in machine.hierarchies],
        l2_occupancy=[h.l2.occupancy for h in machine.hierarchies],
        directory_entries=machine.controller.directory.n_entries(),
        pages_assigned=len(machine.memory.assigned_pages()),
        home_histogram=homes,
        mean_network_distance=machine.interconnect.mean_distance(),
        diameter=machine.interconnect.diameter(),
    )
