"""Gunther's Universal Scalability Law fitted to a measured speedup curve.

The USL is the rational function

    C(p) = p / (1 + σ·(p − 1) + κ·p·(p − 1))

with σ the *contention* (serialization/queueing) coefficient and κ the
*coherency-delay* (pairwise-exchange) coefficient.  Both are directly
comparable to Scal-Tool's decomposition: σ plays the role of the
synchronization + load-imbalance categories, κ the caching/coherency
category (see :mod:`repro.models.compare`).

The fit linearizes exactly: with normalized speedups S(p) (S(1) = 1),

    y(p) = p / S(p) − 1 = σ·(p − 1) + κ·p·(p − 1)

is linear in (σ, κ) over the design [p − 1, p(p − 1)], so the solve is a
plain least squares — the same machinery (and the same seeded
:func:`~repro.obs.diagnostics.bootstrap_ci`) the Eq. 3 latency fit uses.
Physics constrains σ, κ ≥ 0; when the unconstrained solution crosses
zero the offending coefficient is clamped and the fit redone on the
remaining column, flagged in the diagnostics (``clamped``).

The peak-speedup count is n\\* = sqrt((1 − σ) / κ) (κ > 0); with κ = 0
the curve is monotone and saturates at 1/σ.
"""

from __future__ import annotations

import math

import numpy as np

from ..obs import runtime as obs
from ..obs.diagnostics import bootstrap_ci
from .base import (
    ModelFit,
    model_fit_diagnostics,
    normalized_speedups,
    speedup_r_squared,
    validate_for_fit,
)
from .dataset import SpeedupDataset

__all__ = ["USLModel", "usl_speedup"]


def usl_speedup(n: float, sigma: float, kappa: float) -> float:
    """C(n) for one (σ, κ) pair."""
    denom = 1.0 + sigma * (n - 1.0) + kappa * n * (n - 1.0)
    return n / denom if denom > 0 else 0.0


def _solve_nonnegative(design: np.ndarray, y: np.ndarray) -> tuple[float, float, list[str]]:
    """Least squares under σ, κ >= 0; returns the clamped column names."""
    sol, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
    sigma, kappa = float(sol[0]), float(sol[1])
    if sigma >= 0 and kappa >= 0:
        return sigma, kappa, []
    candidates: list[tuple[float, tuple[float, float], list[str]]] = []
    # sigma-only, kappa-only, and the all-zero fallback.
    for keep, names in ((0, ["kappa"]), (1, ["sigma"])):
        col = design[:, keep : keep + 1]
        c, _, _, _ = np.linalg.lstsq(col, y, rcond=None)
        value = max(0.0, float(c[0]))
        params = (value, 0.0) if keep == 0 else (0.0, value)
        sse = float(np.sum((y - col[:, 0] * value) ** 2))
        candidates.append((sse, params, names))
    candidates.append((float(np.sum(y**2)), (0.0, 0.0), ["sigma", "kappa"]))
    sse, params, clamped = min(candidates, key=lambda c: c[0])
    return params[0], params[1], clamped


class USLModel:
    """Fit the Universal Scalability Law to a speedup curve."""

    name = "usl"
    equation = "C(p) = p / (1 + sigma*(p-1) + kappa*p*(p-1))"

    def fit(self, dataset: SpeedupDataset) -> ModelFit:
        with obs.tracer().span("models.fit", model=self.name, points=len(dataset.points)):
            validate_for_fit(dataset, "USL fit")
            speedups = normalized_speedups(dataset)
            rows = [(n, s) for n, s in zip(dataset.counts, speedups) if n > 1]
            design = np.array([[n - 1.0, n * (n - 1.0)] for n, _ in rows])
            y = np.array([n / s - 1.0 for n, s in rows])
            sigma, kappa, clamped = _solve_nonnegative(design, y)
            ci = bootstrap_ci(design, y, ("sigma", "kappa"))

            modeled = [usl_speedup(n, sigma, kappa) for n in dataset.counts]
            residuals = [m - c for m, c in zip(speedups, modeled)]
            r2 = speedup_r_squared(speedups, modeled)

            peak_n = peak_speedup = None
            if kappa > 0:
                peak_n = math.sqrt(max(0.0, 1.0 - sigma) / kappa)
                peak_n = max(1.0, peak_n)
                peak_speedup = usl_speedup(peak_n, sigma, kappa)

            diagnostics = model_fit_diagnostics(
                name="usl_fit",
                equation=self.equation,
                dataset=dataset,
                estimates={"sigma": sigma, "kappa": kappa},
                ci=ci,
                r_squared=r2,
                residuals=residuals,
                clamped=clamped,
            )
            obs.registry().inc("models.fit.usl")

            def predict(n: float) -> float:
                return usl_speedup(n, sigma, kappa)

            def band(n: float) -> tuple[float, float] | None:
                # Speedup falls as either coefficient grows, so the CI
                # corners bound the curve: (hi, hi) below, (lo, lo) above.
                if "sigma" not in ci or "kappa" not in ci:
                    return None
                lo = usl_speedup(n, max(0.0, ci["sigma"][1]), max(0.0, ci["kappa"][1]))
                hi = usl_speedup(n, max(0.0, ci["sigma"][0]), max(0.0, ci["kappa"][0]))
                point = predict(n)
                return (min(lo, point), max(hi, point))

            return ModelFit(
                model=self.name,
                equation=self.equation,
                label=dataset.label,
                params={"sigma": sigma, "kappa": kappa},
                ci=ci,
                r_squared=r2,
                residual_rms=float(np.sqrt(np.mean(np.square(residuals)))),
                residuals=residuals,
                n_points=len(dataset.points),
                peak_n=peak_n,
                peak_speedup=peak_speedup,
                diagnostics=diagnostics,
                predict=predict,
                band=band,
            )

    def penalty_shares(self, params: dict[str, float], n: int) -> dict[str, float]:
        """How the modeled slowdown at n splits between σ and κ terms.

        The USL denominator is 1 (ideal) + σ(n−1) (contention) +
        κn(n−1) (coherency); the shares are each penalty term over the
        whole denominator — directly comparable to Scal-Tool's cost
        shares of the measured cycles.
        """
        sigma, kappa = params["sigma"], params["kappa"]
        contention = sigma * (n - 1.0)
        coherency = kappa * n * (n - 1.0)
        denom = 1.0 + contention + coherency
        return {
            "contention_share": contention / denom,
            "coherency_share": coherency / denom,
        }
