"""The analysis service: a serving layer over the run engine.

Scal-Tool is meant to be run *on demand* over counter measurements; this
package turns the deterministic :mod:`repro.runner.engine` into a small
inference-serving-shaped stack (queue -> planner -> batcher -> executor
-> cache) that many concurrent clients can share:

* :mod:`repro.service.requests` — the request model.  Every request kind
  (``analyze`` / ``campaign`` / ``sweep`` / ``whatif`` / ``predict``)
  compiles to the *same* code path the CLI runs, so a service result is
  byte-identical to the corresponding ``scaltool`` invocation.
* :mod:`repro.service.planner` — compiles a request to its
  :class:`~repro.runner.engine.RunSpec` set and deduplicates specs that
  are already cached on disk or in flight on behalf of another job.
* :mod:`repro.service.store` — the persistent job store (one atomic JSON
  file per job under the cache root): jobs survive a restart and the
  ``status`` / ``result`` endpoints are idempotent.
* :mod:`repro.service.core` — :class:`AnalysisService`: an asyncio
  priority job queue with admission control (bounded backpressure), a
  spec batcher that coalesces concurrent jobs' outstanding runs into
  single :meth:`Executor.run` batches, per-job timeouts, bounded retry
  of transient failures, and drain-on-shutdown.
* :mod:`repro.service.http` / :mod:`repro.service.client` — a stdlib
  HTTP JSON API (``scaltool serve``) and the matching Python client.
* :mod:`repro.service.sharding` / :mod:`repro.service.shared` /
  :mod:`repro.service.dispatcher` / :mod:`repro.service.worker` — the
  multi-process deployment (``scaltool serve --workers N``): a
  dispatcher consistent-hashes content-addressed job fingerprints onto
  N worker processes, which share the run cache (SQLite-indexed), a
  cross-process claim table with TTL/heartbeat expiry, and the job
  store; ``/metrics`` and ``/healthz`` serve merged whole-system views.

Library use::

    from repro.service import AnalysisService, ServiceConfig

    svc = AnalysisService(ServiceConfig(cache_dir=".scaltool_cache"))
    svc.start()
    job, deduped = svc.submit("analyze", {"workload": "swim"})
    job = svc.wait(job.id)
    print(job.result["output"])
    svc.close()

Every stage emits ``service.*`` spans and metrics through
:mod:`repro.obs`; always-on integer tallies back the ``/v1/stats``
endpoint even when no obs session is enabled.  See ``docs/service.md``.
"""

from .client import ServiceClient
from .core import AnalysisService, ServiceConfig
from .dispatcher import Dispatcher
from .http import ServiceServer
from .planner import InFlightTable, RequestPlan, RequestPlanner
from .requests import REQUEST_KINDS, CompiledRequest, RequestResult, compile_request
from .sharding import HashRing
from .shared import IndexedRunCache, RunCacheIndex, SqliteClaimTable
from .store import Job, JobStore

__all__ = [
    "AnalysisService",
    "ServiceConfig",
    "ServiceClient",
    "ServiceServer",
    "Dispatcher",
    "HashRing",
    "IndexedRunCache",
    "RunCacheIndex",
    "SqliteClaimTable",
    "Job",
    "JobStore",
    "InFlightTable",
    "RequestPlan",
    "RequestPlanner",
    "REQUEST_KINDS",
    "CompiledRequest",
    "RequestResult",
    "compile_request",
]
