"""JSONL export determinism and the profile text report."""

import itertools
import json

from repro.obs import export_jsonl, format_profile, manifest_records
from repro.obs.runtime import ObsSession


def tick_clock():
    counter = itertools.count()
    return lambda: float(next(counter))


def build_session(clock=None) -> ObsSession:
    """A session exercising every record kind, deterministically."""
    s = ObsSession(clock=clock or tick_clock())
    with s.tracer.span("campaign.run", workload="synthetic", runs=2):
        with s.tracer.span("machine.run", n=2):
            s.tracer.emit("machine.component.cache", 0.5, l2_misses=7)
    s.registry.inc("cache.hit", 1)
    s.registry.inc("campaign.runs", 2)
    s.registry.set_gauge("estimators.t2", 3.5)
    s.registry.observe("campaign.run_seconds", 0.25)
    s.registry.observe("campaign.run_seconds", 0.75)
    return s


class TestManifestRecords:
    def test_kinds_and_order(self):
        records = manifest_records(build_session(), meta={"command": "profile"})
        kinds = [r["kind"] for r in records]
        # meta first, then spans in start order, then metrics by kind.
        assert kinds == ["meta", "span", "span", "span", "counter", "counter", "gauge", "histogram"]
        span_names = [r["name"] for r in records if r["kind"] == "span"]
        assert span_names == ["campaign.run", "machine.run", "machine.component.cache"]
        counter_names = [r["name"] for r in records if r["kind"] == "counter"]
        assert counter_names == sorted(counter_names)

    def test_byte_identical_with_deterministic_clock(self, tmp_path):
        a = export_jsonl(build_session(), tmp_path / "a.jsonl")
        b = export_jsonl(build_session(), tmp_path / "b.jsonl")
        assert a.read_bytes() == b.read_bytes()

    def test_every_line_has_sorted_keys(self, tmp_path):
        path = export_jsonl(build_session(), tmp_path / "m.jsonl", meta={"command": "x"})
        for line in path.read_text().splitlines():
            obj = json.loads(line)
            assert list(obj) == sorted(obj)
            if "attrs" in obj:
                assert list(obj["attrs"]) == sorted(obj["attrs"])

    def test_no_wall_clock_in_keys_or_structure(self):
        """Two sessions doing identical work under *different* clocks must
        differ only in timing values — never in keys, names, or ordering."""
        slow = build_session(clock=lambda c=itertools.count(): next(c) * 123.456)
        fast = build_session()

        def strip_timing(records):
            out = []
            for r in records:
                r = dict(r)
                r.pop("duration_s", None)
                r.pop("start_s", None)
                if r["kind"] == "histogram" or r.get("name", "").endswith("_seconds"):
                    r = {k: v for k, v in r.items() if k in ("kind", "name", "count")}
                out.append(r)
            return out

        assert strip_timing(manifest_records(slow)) == strip_timing(manifest_records(fast))

    def test_meta_line_first(self, tmp_path):
        path = export_jsonl(build_session(), tmp_path / "m.jsonl", meta={"command": "profile"})
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"kind": "meta", "command": "profile"}


class TestFormatProfile:
    def test_report_sections(self):
        text = format_profile(build_session(), meta={"workload": "synthetic"})
        assert text.startswith("# scaltool profile report")
        assert "# meta: " in text
        assert "Spans (start order):" in text
        assert "Counters:" in text
        assert "Gauges:" in text
        assert "Histograms:" in text

    def test_span_indentation_follows_depth(self):
        lines = format_profile(build_session()).splitlines()
        campaign = next(l for l in lines if "campaign.run" in l)
        machine = next(l for l in lines if "machine.run" in l)
        assert campaign.index("campaign.run") < machine.index("machine.run")

    def test_counters_render_as_integers(self):
        text = format_profile(build_session())
        cache_line = next(l for l in text.splitlines() if "cache.hit" in l)
        assert cache_line.rstrip().endswith("1")

    def test_empty_session_is_just_header(self):
        s = ObsSession(clock=tick_clock())
        text = format_profile(s)
        assert text.startswith("# scaltool profile report")
        assert "Spans" not in text and "Counters" not in text
