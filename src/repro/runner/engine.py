"""The run-execution engine: RunSpec -> Executor with per-run caching.

The paper's whole method is a *run matrix* (Table 3 plus the two
micro-kernels): dozens of independent program executions whose counters
feed the Section 2 model.  Every execution site in this repository —
campaign rows, sweep grid points, topology probes — compiles its work
into :class:`RunSpec` values and hands them to an :class:`Executor`:

* :class:`RunSpec` is a frozen, hashable, serialisable description of
  exactly one run: workload name + constructor parameters + data-set
  size + processor count + role + the **full** :class:`MachineConfig`
  used for that run + the workload seed.  Its :meth:`RunSpec.key` is a
  content address over all of that, so two specs collide iff the runs
  are byte-identical by construction (the simulator is deterministic).
* :class:`RunCache` memoises finished :class:`RunRecord` values on disk
  under ``<cache root>/runs/<key>.json`` — one file per run, exactly the
  paper's "one output file" accounting.  A corrupt entry is never fatal:
  it is logged, counted (``engine.cache.corrupt``), and re-executed.
* :class:`SerialExecutor` runs specs in order in-process;
  :class:`ParallelExecutor` fans them out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` and reassembles the
  results in spec order, so both produce *identical* record lists for
  the same plan.  Both retry transient per-run failures
  (:class:`~repro.errors.TransientRunError`, :class:`OSError`) a bounded
  number of times.

Observability: the engine emits ``engine.run`` (one per batch),
``engine.execute`` (one per executed run) and ``engine.map`` spans, and
the ``engine.runs`` / ``engine.retries`` / ``engine.run_seconds`` /
``engine.cache.{hit,miss,corrupt}`` metrics.  Callers see per-run
completions through the ``on_outcome`` callback (cache hits included),
which is how ``scaltool -v`` stays live on warm caches.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from ..errors import ConfigError, CounterFormatError, TransientRunError
from ..machine.config import MachineConfig
from ..obs import lineage
from ..obs import runtime as obs
from ..obs import sampler as obs_sampler
from ..obs import spool as obs_spool
from ..obs.logs import get_logger, kv
from ..obs.trace import TraceHandle
from ..workloads.base import Workload
from ..workloads.registry import make_workload
from .experiment import run_experiment
from .records import ROLE_APP_BASE, RunRecord

__all__ = [
    "RunSpec",
    "RunOutcome",
    "RunCache",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "execute_spec",
    "default_cache_root",
    "default_run_cache",
    "default_executor",
    "TRANSIENT_EXCEPTIONS",
]

_log = get_logger("runner.engine")

#: Cache-key format version; bump when the record or identity layout changes.
SPEC_FORMAT = 1

#: Process-wide memos, keyed by value (specs/machines are frozen, so a
#: compiled spec or computed key is shareable).  Dict access is
#: GIL-atomic; a rare duplicate compute is harmless.
_spec_key_memo: dict["RunSpec", str] = {}
_spec_compile_memo: dict[tuple, "RunSpec"] = {}
_machine_hash_memo: dict["MachineConfig", str] = {}

_ENV_VAR = "SCALTOOL_CACHE_DIR"

#: Exception types the executors treat as retryable.
TRANSIENT_EXCEPTIONS: tuple[type[BaseException], ...] = (TransientRunError, OSError)

#: Called after every completed run (executed or loaded from cache).
OnOutcome = Callable[["RunOutcome"], None]


def default_cache_root() -> Path:
    """Cache root: $SCALTOOL_CACHE_DIR or .scaltool_cache in the cwd."""
    return Path(os.environ.get(_ENV_VAR, ".scaltool_cache"))


@dataclass(frozen=True)
class RunSpec:
    """One run, fully specified: hash it, ship it to a worker, cache it.

    ``params`` is a canonical (sorted) tuple of ``(name, value)`` pairs
    that reconstructs the workload through the registry; ``machine`` is
    the *complete* configuration actually used at this processor count —
    not a summary — so any machine-factory variation with ``n`` lands in
    the cache key.
    """

    workload: str
    params: tuple
    size_bytes: int
    n_processors: int
    machine: MachineConfig
    role: str = ROLE_APP_BASE
    seed: int = 1234
    keep_ground_truth: bool = True

    # -- construction ------------------------------------------------------------

    @classmethod
    def compile(
        cls,
        workload: Workload,
        size_bytes: int,
        n_processors: int,
        machine: MachineConfig,
        role: str = ROLE_APP_BASE,
        keep_ground_truth: bool = True,
    ) -> "RunSpec":
        """Compile a workload instance into a spec, verifying it round-trips.

        The spec must be able to rebuild the workload in another process
        from ``(name, params)`` alone, so compilation rebuilds it once and
        rejects workloads whose ``describe_params`` does not reproduce
        them (those cannot be cached or parallelised safely).
        """
        params = dict(workload.describe_params())
        params.setdefault("seed", workload.seed)
        memo_key = (
            workload.name,
            tuple(sorted(params.items())),
            int(size_bytes),
            int(n_processors),
            machine,
            role,
            bool(keep_ground_truth),
        )
        memoised = _spec_compile_memo.get(memo_key)
        if memoised is not None:
            return memoised
        spec = cls(
            workload=workload.name,
            params=tuple(sorted(params.items())),
            size_bytes=int(size_bytes),
            n_processors=int(n_processors),
            machine=machine.with_processors(int(n_processors)),
            role=role,
            seed=int(params["seed"]),
            keep_ground_truth=keep_ground_truth,
        )
        rebuilt = spec.build_workload()
        if (
            rebuilt.describe_params() != workload.describe_params()
            or rebuilt.seed != workload.seed
        ):
            raise ConfigError(
                f"workload {workload.name!r} cannot be reconstructed from its "
                f"describe_params(); engine execution requires a faithful "
                f"(name, params) round-trip"
            )
        if len(_spec_compile_memo) >= 8192:
            _spec_compile_memo.clear()
        _spec_compile_memo[memo_key] = spec
        return spec

    def workload_params(self) -> dict:
        return dict(self.params)

    def build_workload(self) -> Workload:
        """Rebuild the workload through the registry (works in any process)."""
        return make_workload(self.workload, **self.workload_params())

    # -- identity ---------------------------------------------------------------

    def ident(self) -> dict:
        """The canonical JSON-able identity the cache key hashes."""
        return {
            "format": SPEC_FORMAT,
            "workload": self.workload,
            "params": self.workload_params(),
            "size_bytes": self.size_bytes,
            "n_processors": self.n_processors,
            "role": self.role,
            "seed": self.seed,
            "keep_ground_truth": self.keep_ground_truth,
            "machine": asdict(self.machine),
        }

    def key(self) -> str:
        """Content address of this run (sha256 over the full identity).

        The hash covers the full machine configuration, so it is not free;
        a spec is immutable, so the first computation is memoised (every
        layer — planner, cache, lineage — keys the same spec repeatedly).
        Specs are *values* (frozen, hashable), so the memo is also shared
        process-wide: a freshly compiled spec equal to one any earlier
        request keyed skips the asdict/json/sha round entirely — under a
        serving workload the same few dozen specs are rebuilt per request.
        """
        cached = self.__dict__.get("_key")
        if cached is not None:
            return cached
        key = _spec_key_memo.get(self)
        if key is None:
            try:
                blob = json.dumps(self.ident(), sort_keys=True)
            except TypeError as exc:
                raise ConfigError(f"run spec is not serialisable: {exc}") from exc
            key = hashlib.sha256(blob.encode()).hexdigest()[:24]
            if len(_spec_key_memo) >= 8192:
                _spec_key_memo.clear()
            _spec_key_memo[self] = key
        object.__setattr__(self, "_key", key)
        return key

    def machine_hash(self) -> str:
        """Content address of the machine configuration alone.

        Lineage records carry this next to the spec key so "same runs,
        different machine" is visible at a glance without diffing full
        configurations.
        """
        digest = _machine_hash_memo.get(self.machine)
        if digest is None:
            blob = json.dumps(asdict(self.machine), sort_keys=True)
            digest = hashlib.sha256(blob.encode()).hexdigest()[:12]
            if len(_machine_hash_memo) >= 1024:
                _machine_hash_memo.clear()
            _machine_hash_memo[self.machine] = digest
        return digest

    def describe(self) -> str:
        return f"{self.workload} {self.role} size={self.size_bytes} n={self.n_processors}"


def execute_spec(spec: RunSpec) -> RunRecord:
    """Execute one spec (the engine's unit of work; safe in any process)."""
    workload = spec.build_workload()
    return run_experiment(
        workload,
        spec.size_bytes,
        spec.n_processors,
        machine_factory=lambda n: spec.machine.with_processors(n),
        role=spec.role,
        keep_ground_truth=spec.keep_ground_truth,
    )


@dataclass(frozen=True)
class RunOutcome:
    """One completed run as the executor saw it."""

    index: int  # 0-based position in the submitted spec list
    total: int
    spec: RunSpec
    record: RunRecord
    cached: bool
    seconds: float
    attempts: int = 1


class RunCache:
    """Content-addressed on-disk memoisation of individual runs."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.key()}.json"

    def contains(self, spec: RunSpec) -> bool:
        """Whether an entry exists on disk (without reading or validating it)."""
        return self.path(spec).exists()

    def get(self, spec: RunSpec) -> RunRecord | None:
        """The cached record, or None (missing *or* unreadable — re-run)."""
        path = self.path(spec)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            obs.registry().inc("engine.cache.corrupt")
            _log.warning(
                "run cache entry unreadable, re-running %s", kv(path=path, reason=exc)
            )
            return None
        try:
            return RunRecord.from_json(text)
        except CounterFormatError as exc:
            obs.registry().inc("engine.cache.corrupt")
            _log.warning(
                "run cache entry corrupt, re-running %s", kv(path=path, reason=exc)
            )
            return None

    def put(self, spec: RunSpec, record: RunRecord) -> Path:
        """Store atomically (write-then-rename) so readers never see a torn file.

        The temp name carries pid *and* thread id: service jobs write
        concurrently from threads of one process.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(spec)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        tmp.write_text(record.to_json() + "\n")
        os.replace(tmp, path)
        return path


def default_run_cache() -> RunCache:
    return RunCache(default_cache_root() / "runs")


def _timed_execute(
    execute_fn: Callable[[RunSpec], RunRecord],
    spec: RunSpec,
    spool_path: str | None = None,
    sample_interval: float | None = None,
):
    """Worker body: run one spec, report its wall time (module-level: picklable).

    With ``spool_path``, the run executes under a private obs session
    whose spans/metrics are spooled to that file for the parent to merge
    — this is how ``scaltool profile --jobs N`` sees worker activity.
    The span structure mirrors the serial path exactly (an
    ``engine.execute`` root wrapping the run), so merged parallel
    sessions are structurally identical to serial ones.  With
    ``sample_interval``, the worker also samples its own stacks (the
    parent's sampler cannot see across the process boundary) and spools
    the folded profile beside the spans for the same plan-order merge.
    """
    if spool_path is None:
        t0 = time.perf_counter()
        record = execute_fn(spec)
        return record, time.perf_counter() - t0, os.getpid()
    session = obs.enable()
    sampler = (
        obs_sampler.Sampler(interval_s=sample_interval)
        if sample_interval is not None
        else None
    )
    try:
        t0 = time.perf_counter()
        with session.tracer.span(
            "engine.execute",
            workload=spec.workload,
            role=spec.role,
            size=spec.size_bytes,
            n=spec.n_processors,
        ):
            if sampler is not None:
                sampler.start()
            record = execute_fn(spec)
        seconds = time.perf_counter() - t0
    finally:
        profile = sampler.stop() if sampler is not None else None
        obs.disable()
    obs_spool.write_spool(spool_path, session, meta={"spec": spec.key()}, sampler=profile)
    return record, seconds, os.getpid()


class Executor:
    """Shared batch logic: cache resolution, obs, deterministic reassembly.

    Subclasses implement :meth:`_execute_many` (yield completed misses in
    any order) and :meth:`map` (generic deterministic-order task map used
    by the analysis-side loops: what-if, sensitivity, validation).
    """

    def __init__(
        self,
        retries: int = 2,
        transient: tuple[type[BaseException], ...] = TRANSIENT_EXCEPTIONS,
        execute_fn: Callable[[RunSpec], RunRecord] = execute_spec,
    ) -> None:
        if retries < 0:
            raise ConfigError("retries must be >= 0")
        self.retries = retries
        self.transient = transient
        self._execute_fn = execute_fn

    # -- subclass hooks ---------------------------------------------------------

    def _execute_many(
        self, pending: list[tuple[int, RunSpec]]
    ) -> Iterator[tuple[int, RunRecord, float, int, int]]:
        """Yield ``(index, record, seconds, attempts, pid)`` per executed run."""
        raise NotImplementedError

    def map(self, fn: Callable, items: Iterable) -> list:
        raise NotImplementedError

    # -- the engine entry point -------------------------------------------------

    def run(
        self,
        specs: Sequence[RunSpec],
        cache: RunCache | None = None,
        refresh: bool = False,
        on_outcome: OnOutcome | None = None,
        trace: TraceHandle | None = None,
    ) -> list[RunRecord]:
        """Execute ``specs``; the result list is index-aligned with the input.

        With a ``cache``, previously executed specs load from disk (and
        still produce an outcome event, so progress rendering never goes
        silent on a warm cache); misses execute and are stored.
        ``refresh=True`` bypasses cache reads but rewrites entries.
        With a ``trace`` handle, the batch and every executed run become
        spans of the caller's distributed trace (``engine.run`` framing
        one ``engine.execute`` per executed spec, tagged with the
        worker pid) — this is how the serving path stitches
        worker-process activity into a job's span tree.
        """
        specs = list(specs)
        total = len(specs)
        tracer = obs.tracer()
        reg = obs.registry()
        lin = lineage.current()
        results: list[RunRecord | None] = [None] * total
        tspan = (
            trace.buffer.span(
                "engine.run",
                context=trace.context,
                runs=total,
                executor=type(self).__name__,
                jobs=getattr(self, "jobs", 1),
            )
            if trace is not None
            else None
        )
        if tspan is not None:
            tspan.__enter__()
        try:
            with tracer.span(
                "engine.run",
                runs=total,
                executor=type(self).__name__,
                jobs=getattr(self, "jobs", 1),
                cached_reads=cache is not None and not refresh,
            ) as span:
                pending: list[tuple[int, RunSpec]] = []
                hits = 0
                for i, spec in enumerate(specs):
                    record = None
                    if cache is not None and not refresh:
                        t0 = time.perf_counter()
                        record = cache.get(spec)
                        if record is not None:
                            hits += 1
                            reg.inc("engine.cache.hit")
                            results[i] = record
                            if lin is not None:
                                lin.note(spec, cached=True, seconds=time.perf_counter() - t0)
                            if on_outcome is not None:
                                on_outcome(
                                    RunOutcome(
                                        index=i,
                                        total=total,
                                        spec=spec,
                                        record=record,
                                        cached=True,
                                        seconds=time.perf_counter() - t0,
                                        attempts=0,
                                    )
                                )
                    if record is None:
                        if cache is not None:
                            reg.inc("engine.cache.miss")
                        pending.append((i, spec))
                span.set(cache_hits=hits)
                if tspan is not None:
                    tspan.set(cache_hits=hits)
                for i, record, seconds, attempts, pid in self._execute_many(pending):
                    reg.inc("engine.runs")
                    reg.observe("engine.run_seconds", seconds)
                    if cache is not None:
                        cache.put(specs[i], record)
                    results[i] = record
                    if lin is not None:
                        lin.note(specs[i], cached=False, seconds=seconds, attempts=attempts)
                    if tspan is not None:
                        trace.buffer.emit(
                            "engine.execute",
                            tspan.context,
                            start=time.time() - seconds,
                            duration_s=seconds,
                            pid=pid,
                            workload=specs[i].workload,
                            role=specs[i].role,
                            n=specs[i].n_processors,
                            attempts=attempts,
                        )
                    if on_outcome is not None:
                        on_outcome(
                            RunOutcome(
                                index=i,
                                total=total,
                                spec=specs[i],
                                record=record,
                                cached=False,
                                seconds=seconds,
                                attempts=attempts,
                            )
                        )
        finally:
            if tspan is not None:
                tspan.__exit__(None, None, None)
        return results  # type: ignore[return-value]  # every slot is filled above

    # -- shared retry bookkeeping ------------------------------------------------

    def _note_retry(self, spec: RunSpec, attempt: int, exc: BaseException) -> None:
        obs.registry().inc("engine.retries")
        _log.warning(
            "transient run failure, retrying %s",
            kv(spec=spec.describe(), attempt=attempt, max=self.retries + 1, reason=exc),
        )


class SerialExecutor(Executor):
    """In-order, in-process execution (the default)."""

    jobs = 1

    def _execute_one(self, spec: RunSpec) -> tuple[RunRecord, float, int]:
        tracer = obs.tracer()
        attempts = 0
        while True:
            attempts += 1
            t0 = time.perf_counter()
            try:
                with tracer.span(
                    "engine.execute",
                    workload=spec.workload,
                    role=spec.role,
                    size=spec.size_bytes,
                    n=spec.n_processors,
                ):
                    record = self._execute_fn(spec)
                return record, time.perf_counter() - t0, attempts
            except self.transient as exc:
                if attempts > self.retries:
                    raise
                self._note_retry(spec, attempts, exc)

    def _execute_many(self, pending):
        pid = os.getpid()
        for i, spec in pending:
            record, seconds, attempts = self._execute_one(spec)
            yield i, record, seconds, attempts, pid

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        with obs.tracer().span("engine.map", tasks=len(items), jobs=1):
            return [fn(item) for item in items]


class ParallelExecutor(Executor):
    """Process-pool execution with deterministic result ordering.

    Workers rebuild each spec's workload and machine from the spec itself
    (everything is picklable), so a worker run is bit-for-bit the run a
    :class:`SerialExecutor` would have produced — the simulator is seeded
    and single-threaded.  Results are reassembled in spec order
    regardless of completion order.  Worker processes cannot write into
    the parent's observability session directly; when the parent has a
    session live, each worker run records into a private session that is
    spooled to disk and merged back in plan order after the batch (see
    :mod:`repro.obs.spool`), so ``scaltool profile --jobs N`` and
    ``--metrics-out`` capture worker activity, not just the main process.
    """

    def __init__(
        self,
        jobs: int | None = None,
        retries: int = 2,
        transient: tuple[type[BaseException], ...] = TRANSIENT_EXCEPTIONS,
        execute_fn: Callable[[RunSpec], RunRecord] = execute_spec,
    ) -> None:
        super().__init__(retries=retries, transient=transient, execute_fn=execute_fn)
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ConfigError("jobs must be >= 1")

    def _execute_many(self, pending):
        if not pending:
            return
        # With a live obs session, each worker run spools its spans/metrics
        # to a file keyed by spec index; after the batch the parent merges
        # the spools in plan order, so the merged session is structurally
        # identical to what a SerialExecutor would have recorded.
        spool = obs_spool.SpoolDir() if obs.is_enabled() else None
        # With a live sampler, the pool workers sample themselves (the
        # parent cannot see their stacks) and spool folded profiles; the
        # parent sampler pauses meanwhile so the batch is not double
        # counted as time spent waiting in concurrent.futures.
        parent_sampler = obs_sampler.active_sampler() if spool is not None else None
        sample_interval = parent_sampler.interval_s if parent_sampler is not None else None
        attempts = {i: 0 for i, _ in pending}
        if parent_sampler is not None:
            parent_sampler.pause()
        try:
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(pending))) as pool:

                def submit(i: int, spec: RunSpec):
                    path = str(spool.path(i)) if spool is not None else None
                    return pool.submit(
                        _timed_execute, self._execute_fn, spec, path, sample_interval
                    )

                futures = {}
                for i, spec in pending:
                    attempts[i] += 1
                    futures[submit(i, spec)] = (i, spec)
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for fut in done:
                        i, spec = futures.pop(fut)
                        try:
                            record, seconds, pid = fut.result()
                        except self.transient as exc:
                            if attempts[i] > self.retries:
                                raise
                            self._note_retry(spec, attempts[i], exc)
                            attempts[i] += 1
                            futures[submit(i, spec)] = (i, spec)
                            continue
                        yield i, record, seconds, attempts[i], pid
            if spool is not None:
                tracer, registry = obs.tracer(), obs.registry()
                profile = parent_sampler.profile if parent_sampler is not None else None
                for i, _spec in pending:
                    path = spool.path(i)
                    if path.exists():
                        obs_spool.merge_spool(path, tracer, registry, profile=profile)
        finally:
            if parent_sampler is not None:
                parent_sampler.resume()
            if spool is not None:
                spool.cleanup()

    def map(self, fn: Callable, items: Iterable) -> list:
        """Order-preserving parallel map; ``fn`` and items must be picklable."""
        items = list(items)
        if not items:
            return []
        with obs.tracer().span("engine.map", tasks=len(items), jobs=self.jobs):
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(items))) as pool:
                return list(pool.map(fn, items, chunksize=1))


def default_executor(jobs: int = 1, **kwargs) -> Executor:
    """``jobs <= 1`` -> :class:`SerialExecutor`, else :class:`ParallelExecutor`."""
    if jobs <= 1:
        return SerialExecutor(**kwargs)
    return ParallelExecutor(jobs=jobs, **kwargs)
