"""Bit-vector directory state, as in the Origin 2000's directory scheme.

One entry per cached block records who may hold the line:

* *uncached*  — ``mask == 0``;
* *shared*    — ``mask != 0`` and ``owner == -1``: every set bit is a node
  holding the line in SHARED;
* *exclusive* — ``owner >= 0``: exactly that node holds the line in
  EXCLUSIVE or MODIFIED.

A coarse-vector variant (:class:`CoarseVectorDirectory`) groups nodes per
presence bit, as large Origins did; it over-approximates the sharer set, so
the coherence controller must filter invalidations against actual cache
contents.  The fine bit-vector directory is exact.
"""

from __future__ import annotations

from ..errors import ConfigError, SimulationError

__all__ = ["BitVectorDirectory", "CoarseVectorDirectory", "make_directory"]


class BitVectorDirectory:
    """Exact full-map bit-vector directory."""

    exact = True

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ConfigError("n_nodes must be >= 1")
        self.n_nodes = n_nodes
        # block -> (owner, mask); owner == -1 means shared/uncached.
        self._entries: dict[int, tuple[int, int]] = {}

    # -- queries -------------------------------------------------------------

    def lookup(self, block: int) -> tuple[int, int]:
        """Return ``(owner, presence_mask)``; ``(-1, 0)`` when uncached."""
        return self._entries.get(block, (-1, 0))

    def owner_of(self, block: int) -> int:
        return self._entries.get(block, (-1, 0))[0]

    def presence_mask(self, block: int) -> int:
        return self._entries.get(block, (-1, 0))[1]

    def sharers(self, block: int, exclude: int = -1) -> list[int]:
        """Nodes that may hold the line, optionally excluding one node."""
        mask = self.presence_mask(block)
        if exclude >= 0:
            mask &= ~(1 << exclude)
        out = []
        node = 0
        while mask:
            if mask & 1:
                out.append(node)
            mask >>= 1
            node += 1
        return out

    def is_cached(self, block: int) -> bool:
        return self.presence_mask(block) != 0

    def n_entries(self) -> int:
        return sum(1 for _, mask in self._entries.values() if mask)

    def tracked_blocks(self) -> list[int]:
        return [b for b, (_, mask) in self._entries.items() if mask]

    # -- transitions -----------------------------------------------------------

    def _bit(self, node: int) -> int:
        if not (0 <= node < self.n_nodes):
            raise SimulationError(f"node {node} out of range (n={self.n_nodes})")
        return 1 << node

    def set_exclusive(self, block: int, node: int) -> None:
        """Record ``node`` as the sole (E/M) holder."""
        self._entries[block] = (node, self._bit(node))

    def add_sharer(self, block: int, node: int) -> None:
        """Add ``node`` in SHARED; the entry must not have an owner."""
        owner, mask = self.lookup(block)
        if owner >= 0:
            raise SimulationError(f"add_sharer on exclusively-owned block {block} (owner {owner})")
        self._entries[block] = (-1, mask | self._bit(node))

    def demote_owner(self, block: int) -> int:
        """Owner drops to a plain sharer (read intervention). Returns old owner."""
        owner, mask = self.lookup(block)
        if owner < 0:
            raise SimulationError(f"demote_owner on unowned block {block}")
        self._entries[block] = (-1, mask)
        return owner

    def remove_node(self, block: int, node: int) -> None:
        """Drop ``node`` from the entry (eviction or invalidation ack)."""
        owner, mask = self.lookup(block)
        bit = self._bit(node)
        if not (mask & bit):
            raise SimulationError(f"remove_node: node {node} not present on block {block}")
        mask &= ~bit
        if owner == node:
            owner = -1
        if mask == 0:
            self._entries.pop(block, None)
        else:
            self._entries[block] = (owner, mask)

    def clear_others(self, block: int, keeper: int) -> list[int]:
        """Invalidate every node but ``keeper``; returns the nodes dropped."""
        dropped = self.sharers(block, exclude=keeper)
        mask = self.presence_mask(block) & self._bit(keeper)
        if mask:
            self._entries[block] = (-1, mask)
        else:
            self._entries.pop(block, None)
        return dropped

    def flush(self) -> None:
        self._entries.clear()

    # -- invariants --------------------------------------------------------------

    def check_invariants(self) -> None:
        for block, (owner, mask) in self._entries.items():
            if mask == 0:
                raise SimulationError(f"directory: empty entry retained for block {block}")
            if mask >> self.n_nodes:
                raise SimulationError(f"directory: mask {mask:#x} exceeds node count on block {block}")
            if owner >= 0 and mask != (1 << owner):
                raise SimulationError(
                    f"directory: owned block {block} has extra sharers (owner {owner}, mask {mask:#x})"
                )


class CoarseVectorDirectory(BitVectorDirectory):
    """Coarse-vector directory: one presence bit covers ``group`` nodes.

    The reported sharer list is a superset of the true holders, so the
    controller filters by cache contents before invalidating.  ``owner`` is
    still tracked exactly (as on real machines, which keep an exact pointer
    while the line is exclusive).
    """

    exact = False

    def __init__(self, n_nodes: int, group: int = 4) -> None:
        super().__init__(n_nodes)
        if group < 1:
            raise ConfigError("group must be >= 1")
        self.group = group

    def _bit(self, node: int) -> int:
        if not (0 <= node < self.n_nodes):
            raise SimulationError(f"node {node} out of range (n={self.n_nodes})")
        return 1 << (node // self.group)

    def sharers(self, block: int, exclude: int = -1) -> list[int]:
        mask = self.presence_mask(block)
        out = []
        for node in range(self.n_nodes):
            if node == exclude:
                continue
            if mask & (1 << (node // self.group)):
                out.append(node)
        return out

    def remove_node(self, block: int, node: int) -> None:
        # A group bit can only be cleared when *no* node of the group holds
        # the line; the controller cannot know that, so coarse entries decay
        # only via clear_others / flush.  This mirrors real coarse-vector
        # behaviour (spurious invalidations, never missed ones).
        owner, mask = self.lookup(block)
        if owner == node:
            self._entries[block] = (-1, mask)

    def clear_others(self, block: int, keeper: int) -> list[int]:
        dropped = self.sharers(block, exclude=keeper)
        self._entries[block] = (-1, self._bit(keeper))
        return dropped

    def check_invariants(self) -> None:
        for block, (owner, mask) in self._entries.items():
            if mask == 0:
                raise SimulationError(f"directory: empty entry retained for block {block}")
            if owner >= 0 and not (mask & (1 << (owner // self.group))):
                raise SimulationError(f"directory: owner {owner} outside mask on block {block}")


def make_directory(n_nodes: int, kind: str = "bitvector", group: int = 4) -> BitVectorDirectory:
    """Factory used by the coherence controller."""
    if kind == "bitvector":
        return BitVectorDirectory(n_nodes)
    if kind == "coarse":
        return CoarseVectorDirectory(n_nodes, group)
    raise ConfigError(f"unknown directory kind {kind!r}")
