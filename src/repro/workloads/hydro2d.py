"""Hydro2d: shallow-water / hydrodynamics model (paper Table 4, Section 4.2).

The real Hydro2d (SPECFP95) solves hydrodynamical Navier-Stokes-style
equations, parallelised with MP DOACROSS directives.  The paper reports a
10.3 MB footprint, *modest* scalability (speedup ~9 at 32 processors) and
diagnoses **large serial sections**: the limited-caching-space effect
vanishes by 2–3 processors (10.3 MB / 4 MB), synchronization is modest, and
load imbalance — which is how serial sections appear to the machine: every
other processor spinning at the next barrier — dominates.  Removing the MP
factors "would about double its speed for 32 processors".

The model combines three mechanisms:

* balanced DOACROSS sweep phases whose loop bounds are *misaligned* with
  the first-touch partitioning (``shift_frac`` of each processor's range
  belongs to a neighbour's partition) — the real code's many differently
  bounded loops do exactly this, producing remote and migratory-sharing
  traffic that grows with machine size and keeps the non-MP cycles well
  above the uniprocessor's useful work;
* serial phases in which only processor 0 works for ``serial_frac`` of an
  iteration's instructions (boundary conditions, global reductions);
* one barrier per DOACROSS loop — modest synchronization.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..errors import WorkloadError
from ..trace.events import Phase, Segment, make_segment
from ..trace.generators import sweep, sweep_array
from ..trace.synth import concat_traces, interleave_traces
from ..units import MB
from .base import Workload

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.system import DsmMachine

__all__ = ["Hydro2d"]


class Hydro2d(Workload):
    """DOACROSS sweeps with serial sections and misaligned loop bounds."""

    name = "hydro2d"
    cpi0 = 1.25
    m_frac = 0.36
    paper_footprint_bytes = int(10.3 * MB)  # measured by ssusage in the paper
    parallel_model = "MP directives with DOACROSS"
    source = "SPECFP95"
    what_it_does = "Hydrodynamical Navier Stokes equations"

    def __init__(
        self,
        iters: int = 6,
        sweeps_per_iter: int = 3,
        serial_frac: float = 0.06,
        shift_frac: float = 0.25,
        imbalance_amp: float = 0.35,
        refs_per_block: int = 10,
        seed: int = 1234,
    ) -> None:
        super().__init__(iters=iters, seed=seed)
        if not (0.0 <= serial_frac < 0.5):
            raise WorkloadError("serial_frac must be in [0, 0.5)")
        if not (0.0 <= shift_frac <= 1.0):
            raise WorkloadError("shift_frac must be in [0, 1]")
        if not (0.0 <= imbalance_amp < 1.0):
            raise WorkloadError("imbalance_amp must be in [0, 1)")
        if sweeps_per_iter < 1:
            raise WorkloadError("sweeps_per_iter must be >= 1")
        self.sweeps_per_iter = sweeps_per_iter
        self.serial_frac = serial_frac
        self.shift_frac = shift_frac
        self.imbalance_amp = imbalance_amp
        self.refs_per_block = refs_per_block

    def describe_params(self) -> dict:
        return {
            "iters": self.iters,
            "sweeps_per_iter": self.sweeps_per_iter,
            "serial_frac": self.serial_frac,
            "shift_frac": self.shift_frac,
            "imbalance_amp": self.imbalance_amp,
            "refs_per_block": self.refs_per_block,
            "seed": self.seed,
        }

    @staticmethod
    def _shifted_slice(region, cpu: int, n: int, shift_blocks: int) -> np.ndarray:
        """cpu's equal share of ``region``, rotated by ``shift_blocks``.

        The rotation wraps within the region, so every block is still
        visited exactly once per sweep across all processors — only the
        ownership alignment changes.
        """
        per = region.n_blocks // n
        start = cpu * per + shift_blocks
        idx = (start + np.arange(per, dtype=np.int64)) % region.n_blocks
        return region.base_block + idx

    def build(self, machine: "DsmMachine", size_bytes: int) -> Iterator[Phase]:
        nb = self.blocks_for(machine, size_bytes)
        n = machine.n_processors
        per_array = max(n, nb // 4)
        arrays = [machine.allocator.alloc(name, per_array) for name in ("ro", "u", "v", "e")]

        init_segs: list[Segment | None] = []
        for cpu in range(n):
            frags = [
                sweep(reg.slice_for(cpu, n), refs_per_block=1, write_frac=1.0,
                      rng=np.random.default_rng(self.seed + cpu))
                for reg in arrays
            ]
            a, w = concat_traces(*frags)
            init_segs.append(make_segment(a, w, m_frac=self.m_frac))
        yield Phase(name="init", segments=init_segs, barrier=True)

        per_cpu_blocks = per_array // n
        shift_blocks = int(per_cpu_blocks * self.shift_frac)
        # Instructions of one iteration's parallel sweeps, for sizing the
        # serial sections as a fraction of iteration work.
        refs_per_sweep_phase = 2 * per_array * self.refs_per_block
        iter_instructions = int(self.sweeps_per_iter * refs_per_sweep_phase / self.m_frac)

        jitter_rng = np.random.default_rng(self.seed * 65537)

        for it in range(self.iters):
            # Per-iteration trip-count jitter: the real code's DOACROSS
            # loops have varying bounds, so processors carry unequal work.
            jitter = jitter_rng.uniform(-self.imbalance_amp, self.imbalance_amp, size=n)
            # DOACROSS sweeps: each phase reads one array and writes
            # another, interleaved (a[i] = f(b[i])).  Odd sweeps run with
            # rotated loop bounds: shift_frac of each processor's range
            # lies in a neighbour's first-touch partition.
            for s in range(self.sweeps_per_iter):
                src = arrays[s % 4]
                dst = arrays[(s + 1) % 4]
                shifted = (s % 2 == 1) and shift_blocks > 0 and n > 1
                segs: list[Segment | None] = []
                for cpu in range(n):
                    rng = np.random.default_rng(self.seed * 31 + it * 7 + s * 3 + cpu)
                    if shifted:
                        dst_blocks = self._shifted_slice(dst, cpu, n, shift_blocks)
                        src_blocks = self._shifted_slice(src, cpu, n, shift_blocks)
                    else:
                        dst_slice = dst.slice_for(cpu, n)
                        src_slice = src.slice_for(cpu, n)
                        dst_blocks = np.arange(dst_slice.start, dst_slice.stop, dtype=np.int64)
                        src_blocks = np.arange(src_slice.start, src_slice.stop, dtype=np.int64)
                    # The destination is written without a prior read
                    # (a[i] = f(b[i])), so misaligned sweeps produce write
                    # misses/invalidation, not shared-line upgrades -- the
                    # event-31 counter stays a synchronization proxy here.
                    a_dst, w_dst = sweep_array(dst_blocks, refs_per_block=self.refs_per_block,
                                               write_frac=1.0, rng=rng)
                    a_src, w_src = sweep_array(src_blocks, refs_per_block=self.refs_per_block,
                                               write_frac=0.0, rng=rng)
                    a, w = interleave_traces((a_dst, w_dst), (a_src, w_src),
                                             granularity=self.refs_per_block)
                    extra = int(len(a) / self.m_frac * max(0.0, jitter[cpu]))
                    segs.append(make_segment(a, w, m_frac=self.m_frac, extra_instructions=extra))
                yield Phase(name=f"sweep_{it}_{s}", segments=segs, barrier=True)

            # Serial section: only cpu 0 works (boundary conditions, global
            # reductions, I/O bookkeeping of the real code).  Everyone else
            # spins -> the machine books it as load imbalance.
            serial_instr = int(self.serial_frac * iter_instructions)
            if serial_instr > 0:
                rng = np.random.default_rng(self.seed * 131 + it)
                own = arrays[0].slice_for(0, max(1, n))
                n_serial_blocks = min(len(own), max(1, int(serial_instr * self.m_frac * 0.05)))
                a, w = sweep(
                    range(own.start, own.start + n_serial_blocks),
                    refs_per_block=1,
                    write_frac=0.5,
                    rng=rng,
                )
                segs = [None] * n
                segs[0] = Segment(a, w, n_instructions=serial_instr)
                yield Phase(name=f"serial_{it}", segments=segs, barrier=True)
