"""The request planner: spec-level dedup across concurrent jobs.

Two service jobs frequently need the same runs — an ``analyze`` and a
``predict`` over the same workload share the entire Table-3 campaign;
two sweeps share their grid intersection.  The engine's
:class:`~repro.runner.engine.RunCache` already dedups *completed* runs;
the planner closes the remaining window by dedupping runs that are
*currently executing* on behalf of another job:

* specs whose cache entry exists are counted as cache hits and dropped
  from the work list;
* specs another job has already claimed are *waited on* (the claiming
  job's batch will populate the cache);
* the remainder is *claimed* by this job and handed to the batcher.

Claiming is atomic over the whole key set (one lock), so two jobs that
plan concurrently partition the overlap instead of both executing it.
A claim is always released — even when the claiming batch fails — and a
waiter re-checks the cache afterwards: if the owner failed, the waiter
simply executes the spec itself during result assembly, so a crashed
job never wedges its peers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..obs import runtime as obs
from ..runner.engine import RunCache, RunSpec
from .requests import CompiledRequest

__all__ = ["InFlightTable", "RequestPlan", "RequestPlanner"]


class InFlightTable:
    """Thread-safe registry of run-spec keys currently being executed."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: dict[str, threading.Event] = {}

    def claim(self, keys: list[str]) -> tuple[list[str], dict[str, threading.Event]]:
        """Partition ``keys`` into (claimed by me, already in flight).

        Claimed keys get a fresh event that :meth:`release` will set;
        in-flight keys map to the owner's event to wait on.
        """
        claimed: list[str] = []
        waiting: dict[str, threading.Event] = {}
        with self._lock:
            for key in keys:
                event = self._events.get(key)
                if event is None:
                    self._events[key] = threading.Event()
                    claimed.append(key)
                else:
                    waiting[key] = event
        return claimed, waiting

    def release(self, keys: list[str]) -> None:
        """Mark claimed keys finished (success *or* failure) and wake waiters."""
        with self._lock:
            events = [self._events.pop(key, None) for key in keys]
        for event in events:
            if event is not None:
                event.set()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


@dataclass
class RequestPlan:
    """How one request's spec set resolved at planning time."""

    specs: list[RunSpec]  # unique specs, in request order
    claimed: list[RunSpec]  # this job executes these (via the batcher)
    waiting: dict[str, threading.Event] = field(default_factory=dict)
    cache_hits: int = 0

    @property
    def claimed_keys(self) -> list[str]:
        return [spec.key() for spec in self.claimed]


class RequestPlanner:
    """Compile a request into a deduplicated execution plan."""

    def __init__(self, cache: RunCache, inflight: InFlightTable | None = None) -> None:
        self.cache = cache
        self.inflight = inflight or InFlightTable()

    def plan(self, request: CompiledRequest) -> RequestPlan:
        reg = obs.registry()
        with obs.tracer().span("service.plan", kind=request.kind) as span:
            unique: dict[str, RunSpec] = {}
            for spec in request.specs():
                unique.setdefault(spec.key(), spec)
            cached = {k for k, s in unique.items() if self.cache.contains(s)}
            claimed_keys, waiting = self.inflight.claim(
                [k for k in unique if k not in cached]
            )
            plan = RequestPlan(
                specs=list(unique.values()),
                claimed=[unique[k] for k in claimed_keys],
                waiting=waiting,
                cache_hits=len(cached),
            )
            span.set(
                specs=len(unique),
                cache_hits=plan.cache_hits,
                claimed=len(plan.claimed),
                waiting=len(waiting),
            )
        reg.inc("service.plan.specs", len(unique))
        reg.inc("service.plan.cache_hits", plan.cache_hits)
        reg.inc("service.plan.claimed", len(plan.claimed))
        reg.inc("service.plan.inflight_waits", len(waiting))
        return plan

    def complete(self, plan: RequestPlan) -> None:
        """Release this plan's claims (call exactly once, success or not)."""
        self.inflight.release(plan.claimed_keys)

    def wait(self, plan: RequestPlan, timeout: float | None = None) -> bool:
        """Block until every spec claimed by *other* jobs has settled.

        Returns False if ``timeout`` expired first; result assembly then
        just executes whatever is still missing itself.
        """
        ok = True
        for event in plan.waiting.values():
            ok = event.wait(timeout) and ok
        return ok
