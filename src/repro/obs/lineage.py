"""Result lineage: which runs, under which machine, produced a number.

A :class:`Lineage` record accompanies every analysis result.  It lists
the contributing :class:`~repro.runner.engine.RunSpec` keys with whether
each was a cache hit or an actual simulation, the machine-config hash,
the code version, and (for service jobs) the trace id — enough to walk
any reported CPI component back to the exact runs and code that made it.

Collection is ambient so the engine does not need a threaded-through
parameter: :func:`collect` pushes a :class:`LineageCollector` onto a
*thread-local* stack (service jobs execute on worker threads, so a
module-global would interleave concurrent jobs), and
``Executor.run`` notes every outcome on whatever collector is current.
When no collector is active, noting is a no-op — plain library use pays
nothing.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .. import __version__

__all__ = ["Lineage", "LineageCollector", "collect", "current"]


@dataclass
class Lineage:
    """The provenance of one analysis result (JSON-friendly)."""

    kind: str = ""
    fingerprint: str = ""
    code_version: str = ""
    created: float = 0.0
    trace_id: str | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    #: One entry per distinct RunSpec: key, workload, role, size_bytes,
    #: n_processors, machine_hash, cached, seconds, attempts.
    specs: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "code_version": self.code_version,
            "created": self.created,
            "trace_id": self.trace_id,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "specs": list(self.specs),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Lineage":
        return cls(
            kind=d.get("kind", ""),
            fingerprint=d.get("fingerprint", ""),
            code_version=d.get("code_version", ""),
            created=d.get("created", 0.0),
            trace_id=d.get("trace_id"),
            cache_hits=int(d.get("cache_hits", 0)),
            cache_misses=int(d.get("cache_misses", 0)),
            specs=list(d.get("specs", [])),
        )


class LineageCollector:
    """Accumulates run outcomes for the analysis currently executing."""

    def __init__(self) -> None:
        self._by_key: dict[str, dict] = {}

    def note(self, spec, cached: bool, seconds: float = 0.0, attempts: int = 1) -> None:
        """Record one run outcome.

        ``spec`` is duck-typed (needs ``key()``, ``workload``, ``role``,
        ``size_bytes``, ``n_processors`` and, if available,
        ``machine_hash()``).  First note per key wins, except that an
        actual execution always overrides an earlier cache-hit note for
        the same spec (the service marks planner-claimed specs this way).
        """
        key = spec.key()
        prior = self._by_key.get(key)
        if prior is not None and not (prior["cached"] and not cached):
            return
        try:
            machine_hash = spec.machine_hash()
        except AttributeError:
            machine_hash = ""
        self._by_key[key] = {
            "key": key,
            "workload": getattr(spec, "workload", ""),
            "role": getattr(spec, "role", ""),
            "size_bytes": getattr(spec, "size_bytes", 0),
            "n_processors": getattr(spec, "n_processors", 0),
            "machine_hash": machine_hash,
            "cached": bool(cached),
            "seconds": round(float(seconds), 6),
            "attempts": int(attempts),
        }

    def mark_executed(self, keys) -> None:
        """Flip the given spec keys to cache-miss (actually executed).

        The service's batcher runs claimed specs *before* request
        assembly, so assembly sees warm caches and every note arrives as
        a hit; the service corrects the claimed ones here.
        """
        for key in keys:
            entry = self._by_key.get(key)
            if entry is not None:
                entry["cached"] = False

    def build(self, kind: str, fingerprint: str) -> Lineage:
        specs = sorted(
            self._by_key.values(),
            key=lambda e: (e["workload"], e["role"], e["n_processors"], e["size_bytes"]),
        )
        return Lineage(
            kind=kind,
            fingerprint=fingerprint,
            code_version=__version__,
            created=time.time(),
            cache_hits=sum(1 for e in specs if e["cached"]),
            cache_misses=sum(1 for e in specs if not e["cached"]),
            specs=specs,
        )


_state = threading.local()


def _stack() -> list[LineageCollector]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = []
        _state.stack = stack
    return stack


def current() -> LineageCollector | None:
    """The innermost active collector on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def collect():
    """Activate a collector for the duration of the block."""
    collector = LineageCollector()
    stack = _stack()
    stack.append(collector)
    try:
        yield collector
    finally:
        stack.pop()
