"""Planner: cache-hit dropping, atomic in-flight claims, waiter semantics."""

import threading

from repro.runner.engine import RunCache
from repro.service.planner import InFlightTable, RequestPlanner
from repro.service.requests import compile_request

PAYLOAD = {"workload": "synthetic", "s0": 163840, "counts": [1, 2]}


class TestInFlightTable:
    def test_claim_partitions(self):
        table = InFlightTable()
        claimed, waiting = table.claim(["a", "b"])
        assert claimed == ["a", "b"] and waiting == {}
        claimed2, waiting2 = table.claim(["b", "c"])
        assert claimed2 == ["c"]
        assert set(waiting2) == {"b"}
        assert len(table) == 3

    def test_release_wakes_waiters(self):
        table = InFlightTable()
        table.claim(["a"])
        _, waiting = table.claim(["a"])
        assert not waiting["a"].is_set()
        table.release(["a"])
        assert waiting["a"].is_set()
        assert len(table) == 0

    def test_release_unknown_key_is_noop(self):
        InFlightTable().release(["ghost"])

    def test_reclaim_after_release(self):
        table = InFlightTable()
        table.claim(["a"])
        table.release(["a"])
        claimed, waiting = table.claim(["a"])
        assert claimed == ["a"] and not waiting


class TestRequestPlanner:
    def test_first_plan_claims_everything(self, tmp_path):
        planner = RequestPlanner(RunCache(tmp_path / "runs"))
        plan = planner.plan(compile_request("analyze", PAYLOAD))
        assert plan.cache_hits == 0
        assert not plan.waiting
        assert len(plan.claimed) == len(plan.specs) > 0
        planner.complete(plan)

    def test_concurrent_plans_partition_overlap(self, tmp_path):
        planner = RequestPlanner(RunCache(tmp_path / "runs"))
        first = planner.plan(compile_request("analyze", PAYLOAD))
        second = planner.plan(compile_request("whatif", {**PAYLOAD, "tm": 0.5}))
        # Identical spec sets: the second job claims nothing and waits on all.
        assert second.claimed == []
        assert set(second.waiting) == set(first.claimed_keys)
        planner.complete(first)
        assert planner.wait(second, timeout=1.0)
        planner.complete(second)

    def test_cached_specs_become_hits(self, warm_root):
        cache = RunCache(warm_root / "runs")
        request = compile_request("analyze", PAYLOAD)
        planner = RequestPlanner(cache)
        plan = planner.plan(request)
        assert plan.cache_hits == len(plan.specs)
        assert plan.claimed == [] and not plan.waiting
        planner.complete(plan)

    def test_wait_returns_false_on_timeout(self, tmp_path):
        planner = RequestPlanner(RunCache(tmp_path / "runs"))
        first = planner.plan(compile_request("analyze", PAYLOAD))
        second = planner.plan(compile_request("analyze", PAYLOAD))
        assert not planner.wait(second, timeout=0.01)
        planner.complete(first)  # a crashed owner still releases via finally
        assert planner.wait(second, timeout=1.0)

    def test_wait_survives_owner_failure(self, tmp_path):
        # The owner "fails": it releases without populating the cache.  The
        # waiter unblocks and would execute the specs itself at assembly.
        planner = RequestPlanner(RunCache(tmp_path / "runs"))
        owner = planner.plan(compile_request("analyze", PAYLOAD))
        waiter = planner.plan(compile_request("analyze", PAYLOAD))
        released = threading.Event()

        def fail_owner():
            planner.complete(owner)
            released.set()

        threading.Thread(target=fail_owner).start()
        assert planner.wait(waiter, timeout=2.0)
        assert released.is_set()
