"""Render a distributed span tree for the terminal (``scaltool obs trace``).

Input is the span-dict list served by ``GET /v1/jobs/<id>/trace`` (the
:meth:`~repro.obs.trace.TraceSpan.to_dict` shape).  The renderer builds
the parent/child tree from the explicit ``span_id``/``parent_id`` edges,
orders siblings by wall-clock start (ties: by name), and marks the
**critical path** — the chain of children that dominates each parent's
duration — with ``*``, which is what makes a slow job legible at a
glance: follow the stars.

Example::

    * client.submit                           0.412s  pid 4021
      * service.job [jb3f…]                   0.409s  pid 4018
          service.queue.wait                  0.003s
        * service.attempt                     0.401s
          * service.batch.wait                0.322s
            * service.batch                   0.320s
              * engine.run                    0.318s
                * engine.execute n=4          0.171s  pid 4055
                  engine.execute n=2          0.147s  pid 4056
            service.assemble                  0.071s
        http.request                          0.002s
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TraceNode", "build_tree", "critical_path", "render_trace"]


@dataclass
class TraceNode:
    """One span plus its children, ready to render."""

    span: dict
    children: list["TraceNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.span.get("name", "?")

    @property
    def start(self) -> float:
        return float(self.span.get("start", 0.0))

    @property
    def duration(self) -> float:
        return float(self.span.get("duration_s", 0.0))


def build_tree(spans: list[dict]) -> list[TraceNode]:
    """Roots of the span forest (normally one), children in start order.

    A span whose parent is missing from the set (the client root's empty
    parent, or a dropped span) becomes a root rather than disappearing.
    """
    nodes = {s["span_id"]: TraceNode(s) for s in spans if s.get("span_id")}
    roots: list[TraceNode] = []
    for span in spans:
        node = nodes.get(span.get("span_id", ""))
        if node is None:
            continue
        parent = nodes.get(span.get("parent_id", ""))
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.start, n.name))
    roots.sort(key=lambda n: (n.start, n.name))
    return roots


def critical_path(root: TraceNode) -> set[int]:
    """``id()``s of the nodes on the dominant chain from ``root`` down.

    At each level the child with the largest duration continues the
    path; the root itself is always on it.
    """
    path: set[int] = set()
    node: TraceNode | None = root
    while node is not None:
        path.add(id(node))
        node = max(node.children, key=lambda n: n.duration, default=None)
    return path


def _label(node: TraceNode) -> str:
    attrs = node.span.get("attrs", {})
    bits = [node.name]
    if "n" in attrs:
        bits.append(f"n={attrs['n']}")
    if "workload" in attrs:
        bits.append(str(attrs["workload"]))
    if "attempt" in attrs:
        bits.append(f"attempt={attrs['attempt']}")
    if attrs.get("error"):
        bits.append(f"error={attrs['error']}")
    return " ".join(bits)


def render_trace(spans: list[dict], width: int = 72) -> str:
    """The span forest as an indented tree with the critical path starred."""
    roots = build_tree(spans)
    if not roots:
        return "(no spans)\n"
    starred: set[int] = set()
    for root in roots:
        starred |= critical_path(root)
    lines: list[str] = []

    def walk(node: TraceNode, depth: int) -> None:
        mark = "*" if id(node) in starred else " "
        label = f"{'  ' * depth}{mark} {_label(node)}"
        timing = f"{node.duration:8.3f}s"
        pid = node.span.get("pid")
        tail = f"{timing}  pid {pid}" if pid else timing
        pad = max(1, width - len(label) - len(tail))
        lines.append(f"{label}{'.' * pad}{tail}")
        for child in node.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines) + "\n"
