"""CLI service verbs + the byte-identity property.

The acceptance bar for the service: a job's stored output is
byte-identical to what the direct CLI command prints for the same
request.  The property test drives randomly drawn requests through both
paths — ``scaltool <cmd>`` inline vs submit-over-HTTP — and compares
the bytes.
"""

from __future__ import annotations

import contextlib
import io
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.service.client import ServiceClient
from repro.service.core import ServiceConfig
from repro.service.http import ServiceServer

from .conftest import WARM_COUNTS, WARM_S0

WARM_ARGS = ["synthetic", "--s0", str(WARM_S0), "--counts", ",".join(map(str, WARM_COUNTS))]


@pytest.fixture(scope="module")
def server(warm_root):
    srv = ServiceServer(ServiceConfig(cache_dir=warm_root, workers=2), port=0).start()
    yield srv
    srv.shutdown(drain_timeout=30)


def cli_stdout(argv: list[str]) -> str:
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        rc = main(argv)
    assert rc == 0, f"scaltool {' '.join(argv)} exited {rc}"
    return buf.getvalue()


class TestCliVerbs:
    def test_submit_wait_prints_job_output(self, server, warm_root, capsys):
        rc = main(["submit", "analyze", *WARM_ARGS, "--wait", "--url", server.url])
        captured = capsys.readouterr()
        assert rc == 0
        assert "job j" in captured.err
        direct = cli_stdout(["analyze", *WARM_ARGS, "--cache-dir", str(warm_root)])
        assert captured.out == direct

    def test_submit_prints_job_id_without_wait(self, server, capsys):
        rc = main(["submit", "analyze", *WARM_ARGS, "--url", server.url])
        captured = capsys.readouterr()
        assert rc == 0
        job_id = captured.out.strip()
        assert job_id.startswith("j") and len(job_id) == 17

    def test_status_prints_json(self, server, capsys):
        main(["submit", "analyze", *WARM_ARGS, "--url", server.url])
        job_id = capsys.readouterr().out.strip()
        assert main(["status", job_id, "--url", server.url]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["id"] == job_id
        assert status["kind"] == "analyze"

    def test_result_waits_and_prints(self, server, warm_root, capsys):
        main(["submit", "analyze", *WARM_ARGS, "--url", server.url])
        job_id = capsys.readouterr().out.strip()
        assert main(["result", job_id, "--wait", "--url", server.url]) == 0
        out = capsys.readouterr().out
        assert out == cli_stdout(["analyze", *WARM_ARGS, "--cache-dir", str(warm_root)])

    def test_result_of_unknown_job_is_error(self, server, capsys):
        assert main(["result", "j" + "e" * 16, "--url", server.url]) == 1
        assert "error" in capsys.readouterr().err

    def test_submit_arg_flag_builds_payload(self, server, warm_root, capsys):
        rc = main(
            [
                "submit",
                "whatif",
                *WARM_ARGS,
                "--arg",
                "tm=0.5",
                "--wait",
                "--url",
                server.url,
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        direct = cli_stdout(
            ["whatif", *WARM_ARGS, "--tm", "0.5", "--cache-dir", str(warm_root)]
        )
        assert captured.out == direct

    def test_submit_bad_arg_rejected(self, server, capsys):
        rc = main(["submit", "whatif", "synthetic", "--arg", "oops", "--url", server.url])
        assert rc == 1
        assert "bad --arg" in capsys.readouterr().err

    def test_unreachable_service_is_cli_error(self, capsys):
        rc = main(["status", "j" + "0" * 16, "--url", "http://127.0.0.1:9"])
        assert rc == 1
        assert "cannot reach" in capsys.readouterr().err


class TestBlameByteIdentity:
    def test_blame_json_serial_vs_parallel_is_byte_identical(self, warm_root):
        base = ["blame", *WARM_ARGS, "--cache-dir", str(warm_root), "--json"]
        serial = cli_stdout(base)
        parallel = cli_stdout(base + ["--jobs", "2"])
        assert serial == parallel


class TestByteIdentityProperty:
    """Service output == direct CLI output, for randomly drawn requests."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        t2=st.sampled_from([0.5, 1.0, 2.0]),
        tm=st.sampled_from([0.25, 1.0, 4.0]),
        tsyn=st.sampled_from([0.5, 1.0]),
    )
    def test_whatif_identical_over_http(self, server, warm_root, t2, tm, tsyn):
        client = ServiceClient(server.url, timeout=30)
        submitted = client.submit(
            "whatif",
            {
                "workload": "synthetic",
                "s0": WARM_S0,
                "counts": list(WARM_COUNTS),
                "t2": t2,
                "tm": tm,
                "tsyn": tsyn,
            },
        )
        view = client.wait(submitted["id"], timeout=120)
        assert view["state"] == "done", view.get("error")
        direct = cli_stdout(
            [
                "whatif",
                *WARM_ARGS,
                "--t2",
                str(t2),
                "--tm",
                str(tm),
                "--tsyn",
                str(tsyn),
                "--cache-dir",
                str(warm_root),
            ]
        )
        assert view["result"]["output"] == direct

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(markdown=st.booleans())
    def test_analyze_identical_over_http(self, server, warm_root, markdown):
        client = ServiceClient(server.url, timeout=30)
        submitted = client.submit(
            "analyze",
            {
                "workload": "synthetic",
                "s0": WARM_S0,
                "counts": list(WARM_COUNTS),
                "markdown": markdown,
            },
        )
        view = client.wait(submitted["id"], timeout=120)
        assert view["state"] == "done", view.get("error")
        argv = ["analyze", *WARM_ARGS, "--cache-dir", str(warm_root)]
        if markdown:
            argv.append("--markdown")
        assert view["result"]["output"] == cli_stdout(argv)
