"""Bit-vector and coarse-vector directories."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.machine.directory import BitVectorDirectory, CoarseVectorDirectory, make_directory


class TestBitVector:
    def test_uncached_lookup(self):
        d = BitVectorDirectory(4)
        assert d.lookup(10) == (-1, 0)
        assert not d.is_cached(10)

    def test_exclusive(self):
        d = BitVectorDirectory(4)
        d.set_exclusive(10, 2)
        assert d.owner_of(10) == 2
        assert d.presence_mask(10) == 0b100
        assert d.sharers(10) == [2]

    def test_add_sharers(self):
        d = BitVectorDirectory(4)
        d.add_sharer(10, 0)
        d.add_sharer(10, 3)
        assert d.owner_of(10) == -1
        assert d.sharers(10) == [0, 3]

    def test_add_sharer_to_owned_is_bug(self):
        d = BitVectorDirectory(4)
        d.set_exclusive(10, 1)
        with pytest.raises(SimulationError):
            d.add_sharer(10, 2)

    def test_demote_owner(self):
        d = BitVectorDirectory(4)
        d.set_exclusive(10, 1)
        assert d.demote_owner(10) == 1
        assert d.owner_of(10) == -1
        assert d.sharers(10) == [1]

    def test_demote_unowned_is_bug(self):
        d = BitVectorDirectory(4)
        d.add_sharer(10, 1)
        with pytest.raises(SimulationError):
            d.demote_owner(10)

    def test_remove_node(self):
        d = BitVectorDirectory(4)
        d.add_sharer(10, 0)
        d.add_sharer(10, 1)
        d.remove_node(10, 0)
        assert d.sharers(10) == [1]

    def test_remove_last_drops_entry(self):
        d = BitVectorDirectory(4)
        d.add_sharer(10, 0)
        d.remove_node(10, 0)
        assert d.n_entries() == 0

    def test_remove_absent_node_is_bug(self):
        d = BitVectorDirectory(4)
        d.add_sharer(10, 0)
        with pytest.raises(SimulationError):
            d.remove_node(10, 3)

    def test_remove_owner_clears_ownership(self):
        d = BitVectorDirectory(4)
        d.set_exclusive(10, 2)
        d.remove_node(10, 2)
        assert d.lookup(10) == (-1, 0)

    def test_clear_others(self):
        d = BitVectorDirectory(4)
        for node in range(4):
            d.add_sharer(10, node)
        dropped = d.clear_others(10, keeper=2)
        assert dropped == [0, 1, 3]
        assert d.sharers(10) == [2]

    def test_clear_others_keeper_absent(self):
        d = BitVectorDirectory(4)
        d.add_sharer(10, 0)
        dropped = d.clear_others(10, keeper=3)
        assert dropped == [0]
        assert not d.is_cached(10)

    def test_sharers_exclude(self):
        d = BitVectorDirectory(4)
        d.add_sharer(10, 0)
        d.add_sharer(10, 2)
        assert d.sharers(10, exclude=0) == [2]

    def test_node_out_of_range(self):
        d = BitVectorDirectory(2)
        with pytest.raises(SimulationError):
            d.set_exclusive(1, 5)

    def test_invariants(self):
        d = BitVectorDirectory(4)
        d.set_exclusive(1, 0)
        d.add_sharer(2, 1)
        d.check_invariants()

    def test_flush(self):
        d = BitVectorDirectory(4)
        d.set_exclusive(1, 0)
        d.flush()
        assert d.n_entries() == 0

    def test_tracked_blocks(self):
        d = BitVectorDirectory(4)
        d.set_exclusive(7, 0)
        d.add_sharer(9, 2)
        assert sorted(d.tracked_blocks()) == [7, 9]


class TestCoarseVector:
    def test_sharers_superset(self):
        d = CoarseVectorDirectory(8, group=4)
        d.add_sharer(10, 1)
        # the whole group 0..3 is reported
        assert d.sharers(10) == [0, 1, 2, 3]

    def test_owner_tracked_exactly(self):
        d = CoarseVectorDirectory(8, group=4)
        d.set_exclusive(10, 5)
        assert d.owner_of(10) == 5

    def test_remove_non_owner_keeps_group_bit(self):
        d = CoarseVectorDirectory(8, group=4)
        d.add_sharer(10, 1)
        d.remove_node(10, 1)  # cannot clear: other group members may hold it
        assert d.is_cached(10)

    def test_clear_others_keeps_keeper_group(self):
        d = CoarseVectorDirectory(8, group=4)
        d.add_sharer(10, 1)
        d.add_sharer(10, 6)
        d.clear_others(10, keeper=6)
        assert 6 in d.sharers(10)
        assert 1 not in d.sharers(10)

    def test_group_validation(self):
        with pytest.raises(ConfigError):
            CoarseVectorDirectory(8, group=0)

    def test_not_exact(self):
        assert CoarseVectorDirectory(8).exact is False
        assert BitVectorDirectory(8).exact is True


class TestFactory:
    def test_bitvector(self):
        assert isinstance(make_directory(4, "bitvector"), BitVectorDirectory)

    def test_coarse(self):
        d = make_directory(8, "coarse", group=2)
        assert isinstance(d, CoarseVectorDirectory)
        assert d.group == 2

    def test_unknown(self):
        with pytest.raises(ConfigError):
            make_directory(4, "sparse")
