#!/usr/bin/env python3
"""Segment-level analysis and trace replay (Section 2.1 + trace workflows).

Two capabilities beyond the headline decomposition:

1. *segments* — "these plots can be obtained for the overall application
   or for a segment of the application": break T3dheat into its SpMV and
   its CG vector steps and see which phase group owns which cost;
2. *trace replay* — freeze one run's reference stream to disk and replay
   it bit-identically under a different machine (here: the MSI protocol),
   the classic trace-driven ablation workflow.

Run:  python examples/segment_and_replay.py
"""

import tempfile
from dataclasses import replace
from pathlib import Path

from repro.core import ScalTool
from repro.core.segments import analyze_segments
from repro.machine.config import origin2000_scaled
from repro.machine.system import DsmMachine
from repro.runner import CampaignConfig
from repro.runner.cache import cached_campaign
from repro.trace.recorder import TraceReplayWorkload, record_workload
from repro.workloads import T3dheat


def main() -> None:
    workload = T3dheat()
    config = CampaignConfig(s0=workload.default_size(), processor_counts=(1, 8, 32))
    campaign = cached_campaign(workload, config)
    analysis = ScalTool(campaign).analyze()

    groups = {"init": "init", "spmv": "spmv_*", "vector steps": "cg_*"}
    segments = analyze_segments(analysis, campaign, groups)
    print(segments.summary())
    for name in groups:
        print(f"  {name:>14s} at n=32: dominant cost = {segments.dominant_cost(name, 32)}")

    print("\n-- trace replay: MESI vs MSI on the same frozen reference stream --")
    cfg = origin2000_scaled(n_processors=8)
    trace = record_workload(T3dheat(iters=1, inner_steps=4), cfg, workload.default_size())
    with tempfile.TemporaryDirectory() as tmp:
        path = trace.save(Path(tmp) / "t3dheat.npz")
        print(f"recorded {trace.total_refs:,} references to {path.name}")
        replay = TraceReplayWorkload.from_file(path)
        for protocol in ("mesi", "msi"):
            machine = DsmMachine(replace(cfg, protocol=protocol))
            res = machine.run(replay, trace.size_bytes)
            c = res.counters
            print(
                f"  {protocol}: {c.cycles:12,.0f} cycles, "
                f"event31 = {c.store_exclusive_to_shared:6,.0f} "
                f"(fetchops = {res.ground_truth.barriers})"
            )
    print(
        "\nSame trace, different protocol: MSI burns extra upgrade transactions\n"
        "and floods the counter the paper uses as its synchronization proxy."
    )


if __name__ == "__main__":
    main()
