"""Address-trace representation and generators.

Workloads produce :class:`~repro.trace.events.Phase` objects: per-processor
:class:`~repro.trace.events.Segment` access streams separated by barriers.
Generators in :mod:`repro.trace.generators` build the streams vectorised
with NumPy (sweeps, strides, stencils, gathers, pointer chases);
:mod:`repro.trace.synth` composes them.
"""

from .events import Phase, Segment, make_segment
from .generators import (
    gather_sweep,
    pointer_chase,
    random_access,
    stencil_sweep,
    strided_sweep,
    sweep,
    sweep_array,
)
from .recorder import RecordedTrace, TraceReplayWorkload, record_workload
from .synth import concat_traces, interleave_traces, repeat_trace, split_trace

__all__ = [
    "Phase",
    "Segment",
    "make_segment",
    "sweep",
    "sweep_array",
    "strided_sweep",
    "random_access",
    "stencil_sweep",
    "gather_sweep",
    "pointer_chase",
    "concat_traces",
    "interleave_traces",
    "repeat_trace",
    "split_trace",
    "RecordedTrace",
    "TraceReplayWorkload",
    "record_workload",
]
