"""Block-granular set-associative cache with MESI line states.

Addresses are *block ids* (byte address >> log2(line size)); the set index
is the low bits of the block id.  The cache tracks, per resident line, one
of the MESI states (Illinois protocol, as on the Origin 2000):

* ``MODIFIED`` — dirty, this cache is the only holder;
* ``EXCLUSIVE`` — clean, this cache is the only holder;
* ``SHARED`` — clean, possibly multiple holders;
* absent — invalid.

The cache knows nothing about the protocol; it only stores state and applies
its replacement policy.  The directory controller in
:mod:`repro.machine.coherence` drives the state transitions.

Performance: the per-access hot path is two dict lookups and an O(assoc)
list move, which keeps a pure-Python trace simulation around a microsecond
per reference (see the HPC guide note on avoiding attribute lookups in hot
loops — the system layer binds these methods to locals).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .config import CacheConfig
from .replacement import make_policy

__all__ = [
    "SHARED",
    "EXCLUSIVE",
    "MODIFIED",
    "Eviction",
    "SetAssociativeCache",
]

# Line states.  INVALID is represented by absence from the state map.
SHARED = 1
EXCLUSIVE = 2
MODIFIED = 3

_STATE_NAMES = {SHARED: "S", EXCLUSIVE: "E", MODIFIED: "M"}


@dataclass(frozen=True)
class Eviction:
    """A line pushed out by a replacement decision."""

    block: int
    state: int

    @property
    def dirty(self) -> bool:
        return self.state == MODIFIED


class SetAssociativeCache:
    """One physical cache (an L1 or an L2 slice of one node)."""

    __slots__ = ("cfg", "_state", "_sets", "_set_mask", "_policy", "_inserts", "_evictions")

    def __init__(self, cfg: CacheConfig, seed: int = 0) -> None:
        self.cfg = cfg
        self._state: dict[int, int] = {}
        self._sets: list[list[int]] = [[] for _ in range(cfg.n_sets)]
        self._set_mask = cfg.n_sets - 1
        self._policy = make_policy(cfg.replacement, cfg.associativity, seed)
        self._inserts = 0
        self._evictions = 0

    # -- queries -----------------------------------------------------------

    def set_index(self, block: int) -> int:
        """Set an address maps to."""
        return block & self._set_mask

    def state_of(self, block: int) -> int:
        """MESI state of ``block`` (0 if not resident)."""
        return self._state.get(block, 0)

    def contains(self, block: int) -> bool:
        return block in self._state

    def __len__(self) -> int:
        return len(self._state)

    @property
    def occupancy(self) -> float:
        """Fraction of lines currently valid."""
        return len(self._state) / self.cfg.n_lines

    @property
    def n_inserts(self) -> int:
        return self._inserts

    @property
    def n_evictions(self) -> int:
        return self._evictions

    def resident_blocks(self) -> list[int]:
        """All valid block ids (unordered)."""
        return list(self._state)

    def set_contents(self, set_index: int) -> list[int]:
        """Blocks in one set, in policy order (head = next LRU victim for LRU)."""
        return list(self._sets[set_index])

    # -- mutations ---------------------------------------------------------

    def touch(self, block: int) -> bool:
        """Apply the replacement policy's hit update; returns False on miss."""
        if block not in self._state:
            return False
        idx = self.set_index(block)
        order = self._sets[idx]
        self._policy.on_hit(idx, order, order.index(block))
        return True

    def insert(self, block: int, state: int) -> Eviction | None:
        """Install ``block`` with ``state``, evicting if the set is full.

        Returns the eviction (block id + its state at eviction time) or
        ``None`` if the set had room.  Inserting an already-resident block
        is a simulator bug and raises :class:`SimulationError`.
        """
        if block in self._state:
            raise SimulationError(
                f"{self.cfg.name}: insert of resident block {block} "
                f"(state {_STATE_NAMES.get(self._state[block], '?')})"
            )
        idx = self.set_index(block)
        order = self._sets[idx]
        evicted: Eviction | None = None
        if len(order) >= self.cfg.associativity:
            victim_way = self._policy.victim_index(idx, order)
            victim = order[victim_way]
            evicted = Eviction(victim, self._state.pop(victim))
            self._policy.on_remove(idx, order, victim_way)
            self._evictions += 1
        self._policy.on_insert(idx, order, block)
        self._state[block] = state
        self._inserts += 1
        return evicted

    def set_state(self, block: int, state: int) -> None:
        """Change the MESI state of a resident line."""
        if block not in self._state:
            raise SimulationError(f"{self.cfg.name}: set_state on absent block {block}")
        if state not in _STATE_NAMES:
            raise SimulationError(f"{self.cfg.name}: invalid state {state}")
        self._state[block] = state

    def invalidate(self, block: int) -> int:
        """Remove ``block``; returns its prior state (0 if it was absent)."""
        state = self._state.pop(block, 0)
        if state:
            idx = self.set_index(block)
            order = self._sets[idx]
            self._policy.on_remove(idx, order, order.index(block))
        return state

    def downgrade(self, block: int) -> bool:
        """Force a resident line to SHARED; returns True if it was dirty."""
        prior = self._state.get(block, 0)
        if not prior:
            raise SimulationError(f"{self.cfg.name}: downgrade on absent block {block}")
        self._state[block] = SHARED
        return prior == MODIFIED

    def flush(self) -> None:
        """Drop every line (used between independent runs on one machine)."""
        self._state.clear()
        for s in self._sets:
            s.clear()
        self._policy.reset()

    # -- invariants (exercised by property tests) --------------------------

    def check_invariants(self) -> None:
        """Raise :class:`SimulationError` if internal structures disagree."""
        total = 0
        for idx, order in enumerate(self._sets):
            if len(order) > self.cfg.associativity:
                raise SimulationError(f"{self.cfg.name}: set {idx} over-full ({len(order)})")
            if len(set(order)) != len(order):
                raise SimulationError(f"{self.cfg.name}: duplicate block in set {idx}")
            for block in order:
                if self.set_index(block) != idx:
                    raise SimulationError(f"{self.cfg.name}: block {block} in wrong set {idx}")
                if block not in self._state:
                    raise SimulationError(f"{self.cfg.name}: block {block} in set list but stateless")
            total += len(order)
        if total != len(self._state):
            raise SimulationError(
                f"{self.cfg.name}: state map ({len(self._state)}) and sets ({total}) disagree"
            )
