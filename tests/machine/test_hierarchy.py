"""Two-level hierarchy: inclusion and miss classification."""

import pytest

from repro.errors import SimulationError
from repro.machine.cache import EXCLUSIVE, MODIFIED, SHARED
from repro.machine.config import CacheConfig
from repro.machine.hierarchy import COHERENCE, COLD, REPLACEMENT, CacheHierarchy


def make_hierarchy(node=0) -> CacheHierarchy:
    l1 = CacheConfig(size=128, line_size=32, associativity=2, name="L1D")
    l2 = CacheConfig(size=512, line_size=32, associativity=2, name="L2")
    return CacheHierarchy(node, l1, l2)


class TestFills:
    def test_l2_then_l1(self):
        h = make_hierarchy()
        h.l2_fill(5, EXCLUSIVE)
        h.l1_fill(5)
        assert h.l1_hit(5)
        assert h.l2_state(5) == EXCLUSIVE

    def test_l2_eviction_drops_l1_copy(self):
        h = make_hierarchy()
        # fill one L2 set (2 ways, 8 sets): blocks 0 and 8 map to set 0
        h.l2_fill(0, SHARED)
        h.l1_fill(0)
        h.l2_fill(8, SHARED)
        evicted = h.l2_fill(16, SHARED)  # set 0 full -> evict block 0
        assert evicted.block == 0
        assert not h.l1.contains(0), "inclusion: L1 copy must go with the L2 line"

    def test_seen_tracks_all_filled(self):
        h = make_hierarchy()
        for b in (1, 2, 3):
            h.l2_fill(b, SHARED)
        assert h.seen == {1, 2, 3}


class TestCoherenceActions:
    def test_invalidate_removes_both_levels(self):
        h = make_hierarchy()
        h.l2_fill(5, MODIFIED)
        h.l1_fill(5)
        prior = h.coherence_invalidate(5)
        assert prior == MODIFIED
        assert not h.l1.contains(5)
        assert h.l2_state(5) == 0

    def test_invalidate_absent_is_noop(self):
        h = make_hierarchy()
        assert h.coherence_invalidate(9) == 0
        assert 9 not in h.invalidated

    def test_downgrade_keeps_line(self):
        h = make_hierarchy()
        h.l2_fill(5, MODIFIED)
        assert h.coherence_downgrade(5) is True
        assert h.l2_state(5) == SHARED


class TestClassification:
    def test_cold_first_time(self):
        h = make_hierarchy()
        assert h.classify_miss(7) == COLD

    def test_replacement_after_eviction(self):
        h = make_hierarchy()
        h.l2_fill(0, SHARED)
        h.l2_fill(8, SHARED)
        h.l2_fill(16, SHARED)  # evicts 0
        assert h.classify_miss(0) == REPLACEMENT

    def test_coherence_after_invalidation(self):
        h = make_hierarchy()
        h.l2_fill(5, SHARED)
        h.coherence_invalidate(5)
        assert h.classify_miss(5) == COHERENCE

    def test_refill_clears_coherence_mark(self):
        h = make_hierarchy()
        h.l2_fill(5, SHARED)
        h.coherence_invalidate(5)
        h.l2_fill(5, SHARED)  # refetched
        h.coherence_invalidate(5)
        assert h.classify_miss(5) == COHERENCE
        h.l2_fill(5, SHARED)
        h.l2.invalidate(5)  # plain removal, not coherence
        # still marked seen, not invalidated -> replacement
        h.invalidated.discard(5)
        assert h.classify_miss(5) == REPLACEMENT


class TestInvariants:
    def test_flush(self):
        h = make_hierarchy()
        h.l2_fill(1, SHARED)
        h.l1_fill(1)
        h.flush()
        assert len(h.l1) == 0 and len(h.l2) == 0
        assert not h.seen and not h.invalidated

    def test_inclusion_check(self):
        h = make_hierarchy()
        h.l2_fill(1, SHARED)
        h.l1_fill(1)
        h.check_invariants()
        h.l2.invalidate(1)  # break inclusion by hand
        with pytest.raises(SimulationError):
            h.check_invariants()
