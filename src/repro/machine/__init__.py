"""DSM multiprocessor substrate.

This subpackage is the machine the paper ran on: a cache-coherent NUMA
multiprocessor in the style of the SGI Origin 2000, reduced to the features
Scal-Tool's empirical model observes through hardware event counters:

* per-processor two-level write-back caches (:mod:`repro.machine.cache`,
  :mod:`repro.machine.hierarchy`),
* a bit-vector directory MESI protocol (:mod:`repro.machine.coherence`,
  :mod:`repro.machine.directory`),
* a NUMA interconnect whose latency grows with machine size
  (:mod:`repro.machine.interconnect`),
* page-granular memory placement (:mod:`repro.machine.memory`),
* fetchop-style synchronization with spin-waiting
  (:mod:`repro.machine.sync`),
* R10000-style event counters (:mod:`repro.machine.counters`), and
* the trace-driven timing model that ties them together
  (:mod:`repro.machine.processor`, :mod:`repro.machine.system`).

The simulator additionally keeps a *ground-truth ledger* (cycle and miss
attribution the real hardware could never report) which the validation
experiments use exactly the way the paper uses speedshop.
"""

from .config import (
    CacheConfig,
    InterconnectConfig,
    MachineConfig,
    MemoryConfig,
    TimingConfig,
    origin2000_full,
    origin2000_scaled,
)
from .counters import CounterSet, EVENT_CATALOG, GroundTruth
from .system import DsmMachine, RunResult

__all__ = [
    "CacheConfig",
    "InterconnectConfig",
    "MachineConfig",
    "MemoryConfig",
    "TimingConfig",
    "origin2000_full",
    "origin2000_scaled",
    "CounterSet",
    "GroundTruth",
    "EVENT_CATALOG",
    "DsmMachine",
    "RunResult",
]
