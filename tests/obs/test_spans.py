"""Span tracer: nesting, ordering, timing, and the disabled fast path."""

import itertools

import pytest

from repro.obs.spans import NOOP_SPAN, NOOP_TRACER, NoopSpan, NoopTracer, Span, Tracer


def tick_clock(step=1.0):
    """A deterministic monotonic clock: 0, step, 2*step, ..."""
    counter = itertools.count()
    return lambda: next(counter) * step


class TestSpanNesting:
    def test_paths_and_depths(self):
        tracer = Tracer(clock=tick_clock())
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        paths = {r.name: r.path for r in tracer.records}
        assert paths["outer"] == "outer"
        assert paths["middle"] == "outer/middle"
        assert paths["inner"] == "outer/middle/inner"
        assert paths["sibling"] == "outer/sibling"
        depths = {r.name: r.depth for r in tracer.records}
        assert depths == {"outer": 0, "middle": 1, "inner": 2, "sibling": 1}

    def test_records_complete_children_first(self):
        tracer = Tracer(clock=tick_clock())
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        assert [r.name for r in tracer.records] == ["child", "parent"]

    def test_start_order_is_seq(self):
        tracer = Tracer(clock=tick_clock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        ordered = tracer.in_start_order()
        assert [r.name for r in ordered] == ["a", "b", "c"]
        assert [r.seq for r in ordered] == [0, 1, 2]

    def test_sequential_spans_do_not_nest(self):
        tracer = Tracer(clock=tick_clock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert all(r.depth == 0 for r in tracer.records)
        assert tracer.records[1].path == "second"


class TestSpanTiming:
    def test_duration_from_injected_clock(self):
        # Clock ticks once on enter and once on exit: duration == 1 tick.
        tracer = Tracer(clock=tick_clock(step=0.5))
        with tracer.span("timed"):
            pass
        assert tracer.records[0].duration_s == pytest.approx(0.5)

    def test_parent_duration_covers_children(self):
        tracer = Tracer(clock=tick_clock())
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        child, parent = tracer.records
        assert parent.duration_s > child.duration_s

    def test_elapsed_while_open(self):
        tracer = Tracer(clock=tick_clock())
        with tracer.span("open") as span:
            assert span.elapsed() >= 1.0

    def test_total_seconds_sums_by_name(self):
        tracer = Tracer(clock=tick_clock())
        for _ in range(3):
            with tracer.span("rep"):
                pass
        assert tracer.total_seconds("rep") == pytest.approx(3.0)
        assert len(tracer.by_name("rep")) == 3


class TestSpanAttrs:
    def test_attrs_at_creation_and_set(self):
        tracer = Tracer(clock=tick_clock())
        with tracer.span("s", n=4) as span:
            span.set(extra="yes")
        rec = tracer.records[0]
        assert rec.attrs == {"n": 4, "extra": "yes"}

    def test_to_dict_sorts_attr_keys(self):
        tracer = Tracer(clock=tick_clock())
        with tracer.span("s", zebra=1, apple=2):
            pass
        d = tracer.records[0].to_dict()
        assert list(d["attrs"]) == ["apple", "zebra"]
        assert d["kind"] == "span"


class TestEmit:
    def test_emit_under_open_span(self):
        tracer = Tracer(clock=tick_clock())
        with tracer.span("run"):
            rec = tracer.emit("component.cache", 0.25, cycles=100)
        assert rec.path == "run/component.cache"
        assert rec.depth == 1
        assert rec.duration_s == 0.25
        assert rec.attrs == {"cycles": 100}

    def test_emit_top_level(self):
        tracer = Tracer(clock=tick_clock())
        rec = tracer.emit("solo", 1.5)
        assert rec.path == "solo" and rec.depth == 0

    def test_span_survives_exception(self):
        tracer = Tracer(clock=tick_clock())
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        assert [r.name for r in tracer.records] == ["failing"]
        # The stack unwound: a new span is top-level again.
        with tracer.span("after"):
            pass
        assert tracer.records[-1].depth == 0


class TestNoop:
    def test_noop_singletons(self):
        assert isinstance(NOOP_SPAN, NoopSpan)
        assert isinstance(NOOP_TRACER, NoopTracer)
        assert NOOP_TRACER.span("anything", n=1) is NOOP_SPAN

    def test_noop_records_nothing(self):
        with NOOP_TRACER.span("x") as span:
            span.set(a=1)
            assert span.elapsed() == 0.0
        NOOP_TRACER.emit("y", 1.0)
        assert NOOP_TRACER.records == []
        assert NOOP_TRACER.by_name("x") == []
        assert NOOP_TRACER.total_seconds("x") == 0.0
        assert NOOP_TRACER.in_start_order() == []

    def test_noop_span_allocates_nothing(self):
        # The disabled fast path hands back the same object every time.
        spans = {id(NOOP_TRACER.span(f"s{i}")) for i in range(10)}
        assert len(spans) == 1
