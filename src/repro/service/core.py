""":class:`AnalysisService` — the async job engine behind ``scaltool serve``.

Shape (one box per component, all inside one process)::

    submit()  ──admission──►  asyncio.PriorityQueue
                                   │  worker tasks (config.workers)
                                   ▼
                            _execute_job (thread pool)
                                   │  planner: cache / in-flight dedup
                                   ▼
                            _SpecBatcher (asyncio task)
                                   │  coalesces claimed specs across jobs
                                   ▼
                            Executor.run(batch, cache=RunCache)
                                   │
                                   ▼
                            result assembly (all cache hits) -> JobStore

Guarantees:

* **admission control** — at most ``max_queue`` jobs queued+running;
  beyond that :class:`~repro.errors.QueueFullError` (HTTP 429 with
  ``Retry-After``), and while draining every submit is rejected (503).
* **idempotent submits** — the job id is a content address over the
  canonical request, so resubmitting an identical request returns the
  existing job instead of duplicating work.
* **dedup + batching** — the planner drops specs already on disk, waits
  on specs claimed by other jobs, and the batcher merges what remains
  from concurrently admitted jobs into single ``Executor.run`` calls.
* **durability** — every state transition is persisted atomically; a
  restarted service re-queues interrupted jobs and keeps serving
  ``status``/``result`` for finished ones.
* **graceful lifecycle** — ``drain()`` stops admission and waits for
  in-flight jobs; per-job ``job_timeout``; transient failures
  (:data:`~repro.runner.engine.TRANSIENT_EXCEPTIONS`) retried a bounded
  number of times on top of the engine's own per-run retries.

The simulator itself is CPU-bound and deterministic, so job *threads*
exist to overlap planning/waiting, while actual runs execute through the
configured engine executor (``jobs > 1`` -> a process pool) — the same
split an inference server makes between request handling and the
compute backend.
"""

from __future__ import annotations

import asyncio
import collections
import itertools
import os
import sqlite3
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from pathlib import Path

from ..errors import (
    JobNotFoundError,
    QueueFullError,
    ServiceError,
    StoreUnavailableError,
)
from ..obs import diagnostics
from ..obs import runtime as obs
from ..obs.logs import get_logger, kv
from ..obs.telemetry import Telemetry
from ..obs.trace import TraceBuffer, TraceContext, TraceHandle, TraceSpan, new_span_id, retarget
from ..runner.engine import (
    TRANSIENT_EXCEPTIONS,
    RunCache,
    RunSpec,
    SerialExecutor,
    default_cache_root,
    default_executor,
)
from . import requests as _requests
from .planner import InFlightTable, RequestPlanner
from .sharding import HashRing
from .shared import IndexedRunCache, RunCacheIndex, SqliteClaimTable
from .store import ACTIVE_STATES, TERMINAL_STATES, Job, JobStore

__all__ = ["ServiceConfig", "AnalysisService"]

_log = get_logger("service.core")

#: Queue sentinel that sorts after every real job (priorities are finite).
_STOP = (float("inf"), 0, None)


class _NoopSpan:
    """Stand-in distributed span for untraced jobs (records nothing)."""

    __slots__ = ()
    context = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`AnalysisService`."""

    cache_dir: str | Path | None = None  # default: $SCALTOOL_CACHE_DIR / .scaltool_cache
    jobs: int = 1  # engine executor width (1 = serial, N = process pool)
    workers: int = 2  # concurrent jobs in flight
    max_queue: int = 32  # admission bound on queued+running jobs
    job_timeout: float = 600.0  # seconds before a running job is failed
    retries: int = 1  # service-level retries of transient job failures
    batch_window: float = 0.02  # seconds the batcher waits to coalesce claims
    retry_after: float = 1.0  # advisory back-off handed to rejected clients
    default_priority: int = 5  # lower sorts sooner
    shard_index: int = 0  # this process's shard id on the hash ring
    shard_count: int = 1  # total worker processes sharing the cache root
    claim_ttl: float = 60.0  # seconds before an unheartbeated claim expires

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError("workers must be >= 1")
        if self.max_queue < 1:
            raise ServiceError("max_queue must be >= 1")
        if self.retries < 0:
            raise ServiceError("retries must be >= 0")
        if self.shard_count < 1:
            raise ServiceError("shard_count must be >= 1")
        if not 0 <= self.shard_index < self.shard_count:
            raise ServiceError(
                f"shard_index must be in [0, {self.shard_count}), got {self.shard_index}"
            )
        if self.claim_ttl <= 0:
            raise ServiceError("claim_ttl must be > 0")


class _SpecBatcher:
    """Coalesces claimed spec lists from concurrent jobs into engine batches.

    Lives on the service event loop.  ``submit()`` parks the caller until
    the batch containing its specs has executed (and therefore populated
    the run cache).  One batch executes at a time, through the service's
    configured executor, in a dedicated thread so the loop stays free.
    """

    def __init__(self, service: "AnalysisService") -> None:
        self._service = service
        self._pending: list[tuple[list[RunSpec], asyncio.Future, TraceContext | None]] = []
        self._wakeup = asyncio.Event()
        self._stopping = False

    async def submit(self, specs: list[RunSpec], trace_ctx: TraceContext | None = None) -> None:
        if self._stopping:
            raise ServiceError("service is shutting down")
        fut = asyncio.get_running_loop().create_future()
        self._pending.append((specs, fut, trace_ctx))
        self._wakeup.set()
        await fut

    def stop(self) -> None:
        self._stopping = True
        self._wakeup.set()

    async def run(self) -> None:
        svc = self._service
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if self._pending and svc.config.batch_window > 0:
                # Give concurrently admitted jobs a beat to join the batch.
                await asyncio.sleep(svc.config.batch_window)
            batch, self._pending = self._pending, []
            if not batch:
                if self._stopping:
                    return
                continue
            specs: list[RunSpec] = []
            seen: set[str] = set()
            for spec_list, _, _ in batch:
                for spec in spec_list:
                    if spec.key() not in seen:
                        seen.add(spec.key())
                        specs.append(spec)
            svc._tally("batches")
            svc._tally("batch.specs", len(specs))
            obs.registry().observe("service.batch.size", len(specs))
            svc.telemetry.observe("service.batch.size", len(specs))
            # The batch is shared across jobs, so it records under a private
            # trace; afterwards the spans are copied into every traced
            # participant's tree (re-rooted under its waiting span).
            batch_ctx = (
                TraceContext.new_root()
                if any(ctx is not None for _, _, ctx in batch)
                else None
            )
            failure: BaseException | None = None
            try:
                await asyncio.get_running_loop().run_in_executor(
                    svc._batch_pool, svc._run_batch, specs, batch_ctx
                )
            except Exception as exc:  # noqa: BLE001 - fan the failure out to the jobs
                failure = exc
            # Retarget *before* waking the jobs: a woken job may finish (and
            # pop its trace for persistence) at any point after its future
            # resolves, so its copy of the batch spans must already be there.
            if batch_ctx is not None:
                spans = svc.traces.pop_trace(batch_ctx.trace_id)
                for _, _, ctx in batch:
                    if ctx is not None:
                        svc.traces.extend(retarget(spans, ctx.trace_id, ctx.span_id))
            for _, fut, _ in batch:
                if not fut.done():
                    if failure is not None:
                        fut.set_exception(failure)
                    else:
                        fut.set_result(None)


class AnalysisService:
    """The serving layer: accepts requests, executes them through the engine."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.root = (
            Path(self.config.cache_dir)
            if self.config.cache_dir is not None
            else default_cache_root()
        )
        self.store = JobStore(self.root / "service" / "jobs")
        self.ring = HashRing(self.config.shard_count)
        try:
            # The run-cache membership index (and, under a multi-worker
            # dispatcher, the claim table) lives in SQLite-WAL files under
            # the cache root so every worker process sees the same state.
            self.run_cache: RunCache = IndexedRunCache(
                self.root / "runs",
                RunCacheIndex(self.root / "service" / "run_index.sqlite"),
            )
            inflight = (
                SqliteClaimTable(
                    self.root / "service" / "claims.sqlite", ttl=self.config.claim_ttl
                )
                if self.config.shard_count > 1
                else InFlightTable(ttl=self.config.claim_ttl)
            )
        except (OSError, sqlite3.OperationalError) as exc:
            # An unwritable cache root must degrade (503s from start()),
            # not crash construction — but a multi-worker shard cannot
            # run without its shared claim table.
            if self.config.shard_count > 1:
                raise StoreUnavailableError(
                    f"cannot create shared store under {self.root}: {exc}"
                ) from exc
            _log.warning("shared-store files unavailable %s", kv(reason=exc))
            self.run_cache = RunCache(self.root / "runs")
            inflight = InFlightTable(ttl=self.config.claim_ttl)
        self.planner = RequestPlanner(self.run_cache, inflight)
        self.executor = default_executor(self.config.jobs)
        self.traces = TraceBuffer()
        self.telemetry = Telemetry()
        self.degraded: str | None = None  # store-unwritable reason, set by start()

        self._lock = threading.Lock()
        self._done_cv = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._enqueued_at: dict[str, float] = {}  # job id -> wall time of enqueue
        self._counters: collections.Counter = collections.Counter()
        self._seq = itertools.count()
        self._draining = False
        self._started = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._queue: asyncio.PriorityQueue | None = None
        self._batcher: _SpecBatcher | None = None
        self._tasks: list[asyncio.Task] = []
        self._job_pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="scaltool-job"
        )
        self._batch_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="scaltool-batch"
        )

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "AnalysisService":
        """Start the event loop, workers, and batcher; recover stored jobs."""
        if self._started:
            return self
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="scaltool-service", daemon=True
        )
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self._setup(), self._loop).result(timeout=10)
        self._started = True
        self.degraded = self.store.check_writable()
        if self.degraded is None:
            self._recover()
        else:
            # The service stays up for read-only endpoints (health, metrics,
            # stored results if any); submits are refused with a clear error.
            self._tally("store.degraded")
            _log.warning("job store is not writable %s", kv(reason=self.degraded))
        _log.debug(
            "service started %s",
            kv(root=self.root, workers=self.config.workers, jobs=self.config.jobs),
        )
        return self

    async def _setup(self) -> None:
        self._queue = asyncio.PriorityQueue()
        self._batcher = _SpecBatcher(self)
        self._tasks = [asyncio.create_task(self._batcher.run())]
        for _ in range(self.config.workers):
            self._tasks.append(asyncio.create_task(self._worker()))

    def owns(self, job_id: str) -> bool:
        """Whether the hash ring routes ``job_id`` to this shard."""
        return self.ring.owner(job_id) == self.config.shard_index

    def _recover(self) -> None:
        """Re-register stored jobs; interrupted ones go back on the queue.

        Workers under a dispatcher share one store directory, so each
        recovers only the jobs the ring routes to it — re-queuing a
        peer's interrupted job would double-execute it once the peer
        restarts.
        """
        requeue: list[Job] = []
        with self._lock:
            for job in self.store.load_all(predicate=self.owns):
                self._jobs[job.id] = job
                if job.state in ACTIVE_STATES:
                    job.state = "queued"
                    self.store.put(job)
                    requeue.append(job)
        for job in requeue:
            self._tally("jobs.recovered")
            self._enqueue(job)
        if requeue:
            _log.debug("recovered %d interrupted job(s)", len(requeue))

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting work and wait for queued+running jobs to finish.

        Returns True once no job is active; False if ``timeout`` expired
        first (remaining jobs stay persisted as queued/running and are
        recovered by the next start).
        """
        with self._lock:
            self._draining = True
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                active = sum(1 for j in self._jobs.values() if j.state in ACTIVE_STATES)
            if not active:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.02)

    def close(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Drain (optionally), stop all tasks, and tear the loop down."""
        if not self._started:
            return
        if drain:
            self.drain(timeout=timeout)
        loop = self._loop
        assert loop is not None and self._queue is not None
        try:
            asyncio.run_coroutine_threadsafe(self._shutdown(), loop).result(
                timeout=timeout
            )
        except TimeoutError:  # pragma: no cover - jobs stuck past the deadline
            _log.warning("service shutdown timed out; abandoning worker tasks")
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._job_pool.shutdown(wait=False)
        self._batch_pool.shutdown(wait=False)
        self._started = False
        _log.debug("service stopped")

    async def _shutdown(self) -> None:
        assert self._queue is not None and self._batcher is not None
        for _ in range(self.config.workers):
            self._queue.put_nowait(_STOP)
        self._batcher.stop()
        await asyncio.gather(*self._tasks, return_exceptions=True)

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # -- the public request surface ---------------------------------------------------

    def submit(
        self,
        kind: str,
        payload: dict | None = None,
        priority: int | None = None,
        trace_ctx: TraceContext | None = None,
    ) -> tuple[Job, bool]:
        """Admit one request; returns ``(job, deduped)``.

        ``deduped`` is True when an identical request was already queued,
        running, or done — the existing job is returned and no new work
        is created.  A previously *failed* identical request is re-queued.
        Raises :class:`~repro.errors.QueueFullError` when the queue is at
        capacity or the service is draining.

        ``trace_ctx`` is the caller's trace context (parsed from a
        ``traceparent`` header); when present the job joins that trace —
        its whole lifecycle becomes child spans of the caller's span, and
        the assembled tree is persisted with the job.  A deduped submit
        keeps the first submitter's trace.
        """
        if not self._started:
            raise ServiceError("service is not started")
        if self.degraded is not None:
            self._tally("admission.rejected")
            raise StoreUnavailableError(f"job store is not writable: {self.degraded}")
        request = _requests.compile_request(kind, payload)
        job_id = request.fingerprint()
        priority = self.config.default_priority if priority is None else int(priority)
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None and existing.state != "failed":
                self._tally_locked("jobs.deduped")
                return existing, True
            if self._draining:
                raise QueueFullError(
                    "service is draining and not accepting new jobs",
                    retry_after=self.config.retry_after,
                    draining=True,
                )
            active = sum(1 for j in self._jobs.values() if j.state in ACTIVE_STATES)
            if active >= self.config.max_queue:
                self._tally_locked("admission.rejected")
                raise QueueFullError(
                    f"job queue is full ({active}/{self.config.max_queue})",
                    retry_after=self.config.retry_after,
                )
            if existing is not None:  # failed -> re-queue under the same id
                job = existing
                job.state = "queued"
                job.error = None
                job.result = None
                job.finished = None
                job.priority = priority
            else:
                job = Job(id=job_id, kind=kind, payload=request.canonical, priority=priority)
            if trace_ctx is not None:
                job.trace_id = trace_ctx.trace_id
                job.trace_parent = trace_ctx.span_id
                job.trace_span = new_span_id()
            self._jobs[job.id] = job
            self.store.put(job)
            self._tally_locked("jobs.submitted")
        self._enqueue(job)
        return job, False

    def status(self, job_id: str) -> Job:
        """The job as last persisted (idempotent; survives restarts)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            job = self.store.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no job {job_id!r}")
        return job

    def result(self, job_id: str) -> Job:
        """Like :meth:`status`; callers read ``job.result`` / ``job.error``."""
        return self.status(job_id)

    def wait(self, job_id: str, timeout: float = 300.0, poll: float = 0.02) -> Job:
        """Block until the job reaches a terminal state.

        In-memory jobs wait on a condition variable that :meth:`_finish`
        notifies — no polling on the hot path.  Jobs known only to the
        store (another worker's, a past life's) fall back to polling.
        """
        deadline = time.monotonic() + timeout
        while True:
            with self._done_cv:
                job = self._jobs.get(job_id)
                if job is not None:
                    if job.state in TERMINAL_STATES:
                        return job
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ServiceError(f"timed out waiting for job {job_id}")
                    self._done_cv.wait(min(remaining, 1.0))
                    continue
            job = self.status(job_id)
            if job.state in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(f"timed out waiting for job {job_id}")
            time.sleep(poll)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.created)

    def jobs_view(
        self,
        limit: int | None = None,
        offset: int = 0,
        state: str | None = None,
        fingerprint: str | None = None,
        since: float | None = None,
    ) -> dict:
        """A filtered, paginated job listing (``GET /v1/jobs?...``).

        Filters compose: ``state`` matches the job state exactly,
        ``fingerprint`` is a job-id prefix (the fingerprint *is* the id),
        ``since`` keeps jobs submitted at or after the epoch timestamp.
        The page is cut *after* filtering; ``total`` counts the filtered
        set so callers can page through it.
        """
        if limit is not None and limit < 0:
            raise ServiceError(f"bad limit {limit}; expected a non-negative integer")
        if offset < 0:
            raise ServiceError(f"bad offset {offset}; expected a non-negative integer")
        jobs = self.jobs()
        if state is not None:
            jobs = [j for j in jobs if j.state == state]
        if fingerprint is not None:
            jobs = [j for j in jobs if j.id.startswith(fingerprint)]
        if since is not None:
            jobs = [j for j in jobs if j.created >= since]
        total = len(jobs)
        page = jobs[offset:] if limit is None else jobs[offset : offset + limit]
        return {
            "jobs": [j.summary() for j in page],
            "total": total,
            "limit": limit,
            "offset": offset,
        }

    def stats(self) -> dict:
        """Always-on service tallies plus current queue occupancy."""
        with self._lock:
            states = collections.Counter(j.state for j in self._jobs.values())
            counters = dict(self._counters)
            draining = self._draining
        executed = counters.get("batch.specs", 0)
        planned = counters.get("plan.specs", 0)
        return {
            "draining": draining,
            "jobs": {state: states.get(state, 0) for state in ("queued", "running", "done", "failed")},
            "counters": counters,
            "dedup_hit_ratio": round(1.0 - executed / planned, 4) if planned else 0.0,
        }

    def trace(self, job_id: str) -> dict:
        """The job's distributed span tree (persisted, or live if running).

        Returns ``{"job", "trace_id", "complete", "spans"}``; ``complete``
        is False while the job is still active (the spans shown are the
        buffer's view so far).  Raises
        :class:`~repro.errors.JobNotFoundError` for unknown jobs and
        :class:`~repro.errors.ServiceError` for jobs submitted without
        trace propagation.
        """
        job = self.status(job_id)
        if not job.trace_id:
            raise ServiceError(f"job {job_id} was submitted without trace propagation")
        stored = self.store.get_timeline(job_id)
        if stored is not None:
            return {
                "job": job.id,
                "trace_id": job.trace_id,
                "complete": True,
                "spans": stored,
            }
        live = self.traces.spans_for(job.trace_id)
        return {
            "job": job.id,
            "trace_id": job.trace_id,
            "complete": False,
            "spans": [s.to_dict() for s in live],
        }

    def profile_view(self, seconds: float = 1.0, interval: float = 0.005) -> dict:
        """``GET /v1/profile``: sample this process for ``seconds``.

        Runs a :class:`~repro.obs.sampler.Sampler` over **all** threads
        (the handler thread calling this is just sleeping; the work is
        on the executor pool and the asyncio loop), so the answer to
        "what is this worker doing right now" covers the threads doing
        it.  The window is clamped to [0.05, 30] s so a handler thread
        can never be parked indefinitely; the sampler's self-measured
        ``scaltool_profile_overhead_ratio`` gauge is updated on every
        call, which is how the overhead budget stays observable in
        production.
        """
        from ..obs.sampler import Sampler

        seconds = max(0.05, min(float(seconds), 30.0))
        interval = max(0.001, min(float(interval), 1.0))
        self.telemetry.inc("profile.requests")
        obs.registry().inc("profile.requests")
        with obs.tracer().span("profile.sample", seconds=seconds):
            sampler = Sampler(interval_s=interval, all_threads=True)
            sampler.start()
            try:
                time.sleep(seconds)
            finally:
                profile = sampler.stop()
        ratio = profile.overhead_ratio()
        self.telemetry.set_gauge("profile.overhead_ratio", ratio)
        self.telemetry.set_gauge("profile.samples", float(profile.n_samples))
        return {
            "seconds": seconds,
            "interval_s": interval,
            "shard": self.config.shard_index,
            "pid": os.getpid(),
            "profile": profile.to_dict(),
        }

    def health(self) -> dict:
        """The liveness view served by ``GET /healthz``."""
        with self._lock:
            states = collections.Counter(j.state for j in self._jobs.values())
            draining = self._draining
        queued = states.get("queued", 0)
        running = states.get("running", 0)
        if self.degraded is not None:
            status = "degraded"
        elif draining:
            status = "draining"
        else:
            status = "ok"
        return {
            "status": status,
            "draining": draining,
            "jobs": {state: states.get(state, 0) for state in ("queued", "running", "done", "failed")},
            "queue_depth": queued,
            "inflight": running,
            "uptime_seconds": round(self.telemetry.uptime_seconds(), 3),
            "store": {
                "writable": self.degraded is None,
                "error": self.degraded,
                "path": str(self.store.root),
            },
            "shard": {
                "index": self.config.shard_index,
                "count": self.config.shard_count,
                "pid": os.getpid(),
            },
        }

    # -- internals --------------------------------------------------------------------

    def _enqueue(self, job: Job) -> None:
        assert self._loop is not None and self._queue is not None
        with self._lock:
            seq = next(self._seq)
            self._enqueued_at[job.id] = time.time()
        asyncio.run_coroutine_threadsafe(
            self._queue.put((job.priority, seq, job.id)), self._loop
        ).result(timeout=5)
        obs.registry().set_gauge("service.queue.depth", self._queue.qsize())
        self.telemetry.set_gauge("service.queue.depth", self._queue.qsize())

    async def _worker(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            try:
                if item is _STOP:
                    return
                job_id = item[2]
                with self._lock:
                    job = self._jobs.get(job_id)
                    enqueued_at = self._enqueued_at.pop(job_id, None)
                    if job is None or job.state != "queued":
                        continue  # stale queue entry (deduped resubmit, recovery)
                    job.state = "running"
                    job.started = time.time()
                    self.store.put(job)
                if enqueued_at is not None:
                    wait = max(0.0, job.started - enqueued_at)
                    obs.registry().observe("service.queue.wait_seconds", wait)
                    self.telemetry.observe("service.queue.wait_seconds", wait)
                    if job.trace_id and job.trace_span:
                        self.traces.record(
                            TraceSpan(
                                trace_id=job.trace_id,
                                span_id=new_span_id(),
                                parent_id=job.trace_span,
                                name="service.queue.wait",
                                start=enqueued_at,
                                duration_s=wait,
                                attrs={"job": job.id, "priority": job.priority},
                                pid=os.getpid(),
                            )
                        )
                t0 = time.perf_counter()
                try:
                    result = await asyncio.wait_for(
                        loop.run_in_executor(self._job_pool, self._execute_job, job),
                        timeout=self.config.job_timeout,
                    )
                except asyncio.TimeoutError:
                    self._finish(
                        job,
                        "failed",
                        error=f"job timed out after {self.config.job_timeout:g}s",
                        seconds=time.perf_counter() - t0,
                    )
                except Exception as exc:  # noqa: BLE001 - job failure, not service failure
                    self._finish(
                        job, "failed", error=str(exc), seconds=time.perf_counter() - t0
                    )
                else:
                    self._finish(job, "done", result=result, seconds=time.perf_counter() - t0)
            finally:
                self._queue.task_done()

    def _finish(
        self,
        job: Job,
        state: str,
        result: dict | None = None,
        error: str | None = None,
        seconds: float = 0.0,
    ) -> None:
        if result is not None and isinstance(result.get("lineage"), dict):
            result["lineage"]["trace_id"] = job.trace_id
        finished = time.time()
        if job.trace_id and job.trace_span:
            # Close the job's own span (the parent of every lifecycle span
            # recorded above) and persist the finished tree beside the job
            # — *before* the state flips to terminal: a long-polling
            # waiter wakes the instant the state changes, and its very
            # next read must already see the complete timeline.
            self.traces.record(
                TraceSpan(
                    trace_id=job.trace_id,
                    span_id=job.trace_span,
                    parent_id=job.trace_parent or "",
                    name="service.job",
                    start=job.created,
                    duration_s=max(0.0, finished - job.created),
                    attrs={"job": job.id, "kind": job.kind, "state": state},
                    pid=os.getpid(),
                )
            )
            spans = self.traces.pop_trace(job.trace_id)
            try:
                self.store.put_timeline(job.id, [s.to_dict() for s in spans])
            except OSError as exc:  # pragma: no cover - disk full/readonly race
                _log.warning("could not persist job timeline %s", kv(job=job.id, reason=exc))
        with self._lock:
            job.state = state
            job.result = result
            job.error = error
            job.finished = finished
            self.store.put(job)
            self._tally_locked("jobs.done" if state == "done" else "jobs.failed")
            self._done_cv.notify_all()
        if result is not None:
            self._publish_health(result.get("data", {}).get("health"))
        obs.registry().observe("service.job_seconds", seconds)
        obs.registry().set_gauge("service.queue.depth", self._queue.qsize() if self._queue else 0)
        self.telemetry.observe("service.job_seconds", seconds)
        self.telemetry.observe("service.e2e_seconds", max(0.0, job.finished - job.created))
        self.telemetry.set_gauge("service.queue.depth", self._queue.qsize() if self._queue else 0)
        _log.debug(
            "job finished %s",
            kv(job=job.id, kind=job.kind, state=state, seconds=f"{seconds:.3f}", error=error),
        )

    def _publish_health(self, health: str | None) -> None:
        """Export a finished job's diagnostics grade to ``/metrics``.

        ``diagnostics.health{grade=...}`` gauges count finished jobs per
        grade, so a scrape shows immediately whether any served number
        shipped with a `suspect` estimation.
        """
        if not health:
            return
        self._tally(f"jobs.health.{health}")
        with self._lock:
            counts = {
                grade: self._counters.get(f"jobs.health.{grade}", 0)
                for grade in diagnostics.GRADES
            }
        for grade, count in counts.items():
            self.telemetry.set_gauge("diagnostics.health", float(count), grade=grade)

    def lineage(self, job_id: str) -> dict:
        """A finished job's result lineage (``GET /v1/jobs/<id>/lineage``).

        Raises :class:`~repro.errors.JobNotFoundError` for unknown jobs
        and :class:`~repro.errors.ServiceError` while the job is still
        active or when its result predates lineage collection.
        """
        job = self.status(job_id)
        if job.state in ACTIVE_STATES:
            raise ServiceError(f"job {job_id} is still {job.state}; lineage arrives with the result")
        if job.state == "failed" or not job.result:
            raise ServiceError(f"job {job_id} failed; no result lineage")
        lineage = job.result.get("lineage")
        if not lineage:
            raise ServiceError(f"job {job_id} carries no lineage record")
        return {
            "job": job.id,
            "kind": job.kind,
            "state": job.state,
            "health": job.result.get("data", {}).get("health"),
            "lineage": lineage,
        }

    def blame(self, job_id: str) -> dict:
        """Scaling-loss localization for a finished campaign-backed job
        (``GET /v1/jobs/<id>/blame``).

        A ``blame`` job serves its stored report; for any other
        campaign-backed kind (``analyze``, ``campaign``, ...) the report
        is derived on the spot — every run is already in the cache, so
        the derivation re-reads records and never re-executes.  Publishes
        the per-segment loss shares as labelled
        ``blame.loss_share{segment=...}`` gauges on ``/metrics``.
        """
        from ..analysis.blame import wall_by_count

        job = self.status(job_id)
        if job.state in ACTIVE_STATES:
            raise ServiceError(f"job {job_id} is still {job.state}; blame needs a result")
        if job.state == "failed" or not job.result:
            raise ServiceError(f"job {job_id} failed; nothing to blame")
        payload = job.payload or {}
        if not all(k in payload for k in ("workload", "s0", "counts")):
            raise ServiceError(
                f"job {job_id} ({job.kind}) carries no campaign to blame"
            )
        if job.kind == "blame":
            report = job.result.get("data", {}).get("report")
            output = job.result.get("output", "")
            result_lineage = job.result.get("lineage")
        else:
            request = _requests.compile_request(
                "blame",
                {
                    "workload": payload["workload"],
                    "params": payload.get("params", {}),
                    "s0": payload["s0"],
                    "counts": payload["counts"],
                },
            )
            with self._tspan("service.blame", job=job.id), obs.tracer().span(
                "service.blame", job=job.id
            ):
                derived = request.execute(
                    cache_root=self.root,
                    executor=SerialExecutor(),
                    progress=None,
                    run_cache=self.run_cache,
                )
            report = derived.data["report"]
            output = derived.output
            result_lineage = derived.lineage
            self._tally("blame.derived")
        if not report:
            raise ServiceError(f"job {job_id} result carries no blame report")
        for vertex in report.get("vertices", []):
            self.telemetry.set_gauge(
                "blame.loss_share",
                float(vertex["cycle_loss_share"]),
                segment=vertex["vertex"],
            )
        self._tally("blame.requests")
        spans = self.store.get_timeline(job_id) or []
        wall = wall_by_count(spans)
        return {
            "job": job.id,
            "kind": job.kind,
            "state": job.state,
            "output": output,
            "report": report,
            "lineage": result_lineage,
            "trace_id": job.trace_id,
            "wall_seconds_by_n": {str(n): wall[n] for n in sorted(wall)},
        }

    def _tspan(self, name: str, **attrs):
        """A distributed span under the current context, or a no-op.

        Untraced jobs must not create spans: a fresh root per span would
        accumulate in the buffer with nobody to pop it.
        """
        if self.traces.current() is None:
            return _NOOP_SPAN
        return self.traces.span(name, **attrs)

    def _execute_job(self, job: Job) -> dict:
        """The job body (runs in a job-pool thread): plan, batch, assemble."""
        job_ctx = (
            TraceContext(trace_id=job.trace_id, span_id=job.trace_span)
            if job.trace_id and job.trace_span
            else None
        )
        with self.traces.attach(job_ctx), obs.tracer().span(
            "service.job", kind=job.kind, job=job.id
        ):
            request = _requests.compile_request(job.kind, job.payload)
            last_exc: BaseException | None = None
            for attempt in range(self.config.retries + 1):
                with self._lock:
                    job.attempts += 1
                    self.store.put(job)
                if attempt:
                    self._tally("jobs.retries")
                    _log.warning(
                        "retrying job %s",
                        kv(job=job.id, attempt=attempt + 1, max=self.config.retries + 1),
                    )
                try:
                    with self._tspan("service.attempt", attempt=attempt + 1):
                        return self._execute_once(request).to_dict()
                except TRANSIENT_EXCEPTIONS as exc:
                    last_exc = exc
            assert last_exc is not None
            raise last_exc

    def _execute_once(self, request: _requests.CompiledRequest) -> _requests.RequestResult:
        plan = self.planner.plan(request)
        claimed_keys = {spec.key() for spec in plan.claimed}
        self._tally("plan.specs", len(plan.specs))
        self._tally("plan.cache_hits", plan.cache_hits)
        self._tally("plan.inflight_waits", len(plan.waiting))
        if plan.claimed:
            assert self._loop is not None and self._batcher is not None
            with self._tspan(
                "service.batch.wait", claimed=len(plan.claimed)
            ) as wait_span:
                fut = asyncio.run_coroutine_threadsafe(
                    self._batcher.submit(plan.claimed, wait_span.context), self._loop
                )
                # Re-heartbeat the claims while the batch runs so a long
                # batch never trips the claim TTL out from under us.
                hb_interval = max(0.5, self.config.claim_ttl / 3.0)
                try:
                    while True:
                        try:
                            fut.result(timeout=hb_interval)
                            break
                        except FuturesTimeoutError:
                            self.planner.heartbeat(plan)
                except Exception as exc:  # noqa: BLE001 - assembly below retries serially
                    self._tally("batch.failures")
                    _log.warning("spec batch failed %s", kv(reason=exc))
                finally:
                    self.planner.complete(plan)
        if plan.waiting:
            with self._tspan("service.inflight.wait", waiting=len(plan.waiting)):
                self.planner.wait(plan, timeout=self.config.job_timeout)
        # Everything is (normally) cached now; assembly re-reads the records
        # in request order and runs the pure-analysis stage.  Anything still
        # missing — a failed batch, a corrupt entry — executes serially here,
        # with the engine's own transient-retry logic.
        with self._tspan("service.assemble", kind=request.kind), obs.tracer().span(
            "service.assemble", kind=request.kind
        ):
            result = request.execute(
                cache_root=self.root,
                executor=SerialExecutor(),
                progress=None,
                run_cache=self.run_cache,
            )
        if result.lineage and claimed_keys:
            # Assembly re-reads from a cache the batcher just filled on this
            # job's behalf, so its collector saw only hits; specs this job
            # claimed were really executed for it — mark them so.
            for entry in result.lineage.get("specs", []):
                if entry["key"] in claimed_keys:
                    entry["cached"] = False
            specs = result.lineage.get("specs", [])
            result.lineage["cache_hits"] = sum(1 for e in specs if e["cached"])
            result.lineage["cache_misses"] = sum(1 for e in specs if not e["cached"])
        return result

    def _run_batch(self, specs: list[RunSpec], batch_ctx: TraceContext | None = None) -> None:
        """Batch body (runs in the dedicated batch thread)."""
        t0 = time.perf_counter()
        with obs.tracer().span("service.batch", specs=len(specs)):
            if batch_ctx is not None:
                with self.traces.span(
                    "service.batch", context=batch_ctx, specs=len(specs)
                ) as tspan:
                    self.executor.run(
                        specs,
                        cache=self.run_cache,
                        trace=TraceHandle(self.traces, tspan.context),
                    )
            else:
                self.executor.run(specs, cache=self.run_cache)
        self.telemetry.observe("engine.batch_seconds", time.perf_counter() - t0)

    def _tally(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._tally_locked(name, value)

    def _tally_locked(self, name: str, value: int = 1) -> None:
        self._counters[name] += value
        obs.registry().inc(f"service.{name}", value)
        self.telemetry.inc(f"service.{name}", value)
