"""Machine diagnostics snapshots."""

from repro.machine.stats import snapshot

from ..conftest import small_synthetic


class TestSnapshot:
    def test_after_run(self, machine):
        machine.run(small_synthetic(), 16 * 1024)
        snap = snapshot(machine)
        assert snap.n_processors == 4
        assert snap.pages_assigned > 0
        assert sum(snap.home_histogram) == snap.pages_assigned
        assert any(o > 0 for o in snap.l2_occupancy)

    def test_first_touch_spreads_homes(self, machine):
        machine.run(small_synthetic(), 16 * 1024)
        snap = snapshot(machine)
        # every cpu first-touches its own partition
        assert all(count > 0 for count in snap.home_histogram)

    def test_describe_renders(self, machine):
        machine.run(small_synthetic(), 16 * 1024)
        text = snapshot(machine).describe()
        assert "processors" in text and "cpu  0" in text

    def test_fresh_machine_empty(self, machine):
        snap = snapshot(machine)
        assert snap.directory_entries == 0
        assert all(o == 0 for o in snap.l1_occupancy)
