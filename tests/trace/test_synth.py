"""Trace composition helpers."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.generators import sweep
from repro.trace.synth import (
    concat_traces,
    empty_trace,
    interleave_traces,
    repeat_trace,
    split_trace,
)


def tr(lo, hi):
    return sweep(range(lo, hi), refs_per_block=1, write_frac=0.0)


class TestConcat:
    def test_order(self):
        a, _ = concat_traces(tr(0, 2), tr(10, 12))
        assert a.tolist() == [0, 1, 10, 11]

    def test_empty_input(self):
        a, w = concat_traces()
        assert len(a) == 0 and len(w) == 0


class TestRepeat:
    def test_tiles(self):
        a, _ = repeat_trace(tr(0, 2), 3)
        assert a.tolist() == [0, 1] * 3

    def test_zero_reps(self):
        a, _ = repeat_trace(tr(0, 2), 0)
        assert len(a) == 0

    def test_negative_rejected(self):
        with pytest.raises(TraceError):
            repeat_trace(tr(0, 2), -1)


class TestInterleave:
    def test_alternates(self):
        a, _ = interleave_traces(tr(0, 3), tr(10, 13), granularity=1)
        assert a.tolist() == [0, 10, 1, 11, 2, 12]

    def test_granularity(self):
        a, _ = interleave_traces(tr(0, 4), tr(10, 14), granularity=2)
        assert a.tolist() == [0, 1, 10, 11, 2, 3, 12, 13]

    def test_uneven_lengths(self):
        a, _ = interleave_traces(tr(0, 4), tr(10, 11), granularity=1)
        assert sorted(a.tolist()) == [0, 1, 2, 3, 10]

    def test_single_input_passthrough(self):
        a, _ = interleave_traces(tr(0, 3))
        assert a.tolist() == [0, 1, 2]

    def test_preserves_write_flags(self):
        t1 = (np.array([1, 2], dtype=np.int64), np.array([True, True]))
        t2 = (np.array([3, 4], dtype=np.int64), np.array([False, False]))
        a, w = interleave_traces(t1, t2, granularity=1)
        assert w.tolist() == [True, False, True, False]

    def test_bad_granularity(self):
        with pytest.raises(TraceError):
            interleave_traces(tr(0, 2), granularity=0)


class TestSplit:
    def test_partition_complete(self):
        parts = split_trace(tr(0, 10), 3)
        assert len(parts) == 3
        combined = np.concatenate([p[0] for p in parts])
        assert combined.tolist() == list(range(10))

    def test_single_part(self):
        parts = split_trace(tr(0, 5), 1)
        assert parts[0][0].tolist() == list(range(5))

    def test_more_parts_than_refs(self):
        parts = split_trace(tr(0, 2), 5)
        assert len(parts) == 5
        assert sum(len(p[0]) for p in parts) == 2

    def test_bad_parts(self):
        with pytest.raises(TraceError):
            split_trace(tr(0, 2), 0)
