"""Fetchop-style synchronization: barriers, locks, and spin-waiting.

The Origin 2000 implements synchronization with *fetchop*, uncached atomic
fetch-and-op operations serviced by the memory controller of the
synchronization variable's home node (Section 2.4.2 of the paper cites the
fetchop man pages and notes "every acquire to a synchronization variable
involves one full memory access").  We model exactly that:

* each barrier arrival / lock acquire issues one fetchop whose latency is a
  round trip to the variable's home (``t_fetchop`` + hop costs) plus
  *serialization* at the home's fetchop ALU (``t_fetchop_service`` per
  request) — this queueing is what makes the measured cpi_sync grow with
  the processor count, as the paper observes;
* processors that arrive early *spin* on a cached flag; spinning burns
  instructions at ``spin_cpi`` (the paper's cpi_imb ≈ 1 — cached loads),
  which inflates the graduated-instruction counter exactly the way load
  imbalance does on the real machine;
* every fetchop increments the event-31 counter
  (store/prefetch-exclusive-to-shared), so the paper's ``ntsyn``
  measurement works unchanged — and is contaminated by true-sharing
  upgrades exactly as discussed for Swim.

Cycle attribution: protocol work (bookkeeping instructions + fetchop
latency + queueing) goes to ``sync_cycles``; waiting goes to
``spin_cycles``.  This is the ground-truth split the simulated speedshop
reports (barrier routines vs wait routines).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError, SimulationError
from .config import MachineConfig
from .counters import CounterSet, GroundTruth
from .interconnect import Interconnect
from .memory import NumaMemory

__all__ = ["SyncVariable", "SyncEngine", "BarrierOutcome"]


@dataclass(frozen=True)
class SyncVariable:
    """One fetchop location (a barrier counter or a lock word)."""

    name: str
    block: int
    home: int


@dataclass
class BarrierOutcome:
    """Timing record of one barrier episode (used by tests and speedshop)."""

    release_time: float
    arrivals: list[float]
    fetchop_done: list[float]
    spin_cycles: list[float]


class SyncEngine:
    """Executes barrier and lock episodes against per-cpu clocks."""

    def __init__(
        self,
        cfg: MachineConfig,
        interconnect: Interconnect,
        memory: NumaMemory,
        counters: list[CounterSet],
        ground_truth: list[GroundTruth],
    ) -> None:
        self.cfg = cfg
        self.interconnect = interconnect
        self.memory = memory
        self.counters = counters
        self.gt = ground_truth
        self._n_vars = 0
        t = cfg.timing
        self._t_fetchop = t.t_fetchop
        self._t_service = t.t_fetchop_service
        self._t_hop = t.t_hop
        self._spin_cpi = t.spin_cpi
        self._pre_instr = t.barrier_instructions

    def allocate_variable(self, name: str) -> SyncVariable:
        """Allocate one sync variable; its page is homed by first touch of cpu 0.

        Real codes initialise barriers on the master thread, so the variable
        lands on node 0's memory — a hotspot whose distance from the other
        processors grows with machine size, driving tsyn(n).
        """
        region = self.memory.allocator.alloc(f"__sync_{self._n_vars}_{name}", 1)
        self._n_vars += 1
        home = self.memory.home_of(region.base_block, 0)
        return SyncVariable(name, region.base_block, home)

    # -- fetchop timing --------------------------------------------------------------

    def _transit(self, cpu: int, home: int) -> float:
        """Round-trip network latency of one fetchop from ``cpu`` to ``home``."""
        return self._t_fetchop + 2.0 * self.interconnect.table[cpu][home] * self._t_hop

    def _serialize(self, requests: list[tuple[float, int]], home: int) -> dict[int, float]:
        """Serialize fetchop requests at the home ALU.

        ``requests`` is (issue_time, cpu); returns cpu -> completion time at
        the issuing processor.
        """
        done: dict[int, float] = {}
        queue = sorted(
            (issue + self._transit(cpu, home) / 2.0, cpu, issue) for issue, cpu in requests
        )
        alu_free = 0.0
        for arrive_home, cpu, issue in queue:
            start = arrive_home if arrive_home > alu_free else alu_free
            alu_free = start + self._t_service
            done[cpu] = alu_free + self._transit(cpu, home) / 2.0
        return done

    # -- barrier ------------------------------------------------------------------------

    def barrier(
        self,
        var: SyncVariable,
        clocks: list[float],
        cpi0: float,
        participants: list[int] | None = None,
    ) -> BarrierOutcome:
        """Run one barrier episode; advances every participant's clock.

        Each participant executes ``barrier_instructions`` bookkeeping
        instructions at ``cpi0``, one fetchop (serialized at the home), then
        spins until the last fetchop completes and the release propagates.
        """
        cpus = list(range(len(clocks))) if participants is None else list(participants)
        if not cpus:
            raise ConfigError("barrier with no participants")
        if len(set(cpus)) != len(cpus):
            raise SimulationError("duplicate barrier participant")

        pre_cost = self._pre_instr * cpi0
        issue = {cpu: clocks[cpu] + pre_cost for cpu in cpus}
        last_arrival = max(issue.values())
        done = self._serialize([(issue[c], c) for c in cpus], var.home)
        release_at_home = max(done[c] - self._transit(c, var.home) / 2.0 for c in cpus)

        arrivals, fetchop_done, spins = [], [], []
        release_times = {}
        for cpu in cpus:
            # Release propagates by invalidating the spun flag: one one-way
            # trip from the home to the spinner.
            release = release_at_home + self.interconnect.table[cpu][var.home] * self._t_hop
            if release < done[cpu]:
                release = done[cpu]
            # Attribution: the share of this episode caused by arriving
            # before the last processor is *load imbalance*; everything
            # else (bookkeeping instructions, the fetchop round trip, and
            # the serialization queue at the home ALU) is *synchronization*.
            # This matches both speedshop's bucketing (time inside
            # mp_barrier vs time in the wait-for-work routines) and what
            # the sync micro-kernel measures: its barriers have the same
            # serialization but no arrival spread.
            advance = release - clocks[cpu]
            imbalance_wait = last_arrival - issue[cpu]
            if imbalance_wait > advance:
                imbalance_wait = advance
            sync_cycles = advance - imbalance_wait

            # Instruction accounting mirrors the two different spin loops of
            # the MP/PCF runtime: imbalance waits spin on a *cached* flag
            # (many instructions at ~1 CPI — the paper's "extra instructions
            # induced by idle thread spinning"), whereas waits inside the
            # barrier itself poll the *uncached* fetchop variable (each poll
            # is one load taking a full memory round trip, so few
            # instructions at a large, n-dependent CPI — which is why the
            # paper finds cpi_sync to be a function of n).
            transit = self._transit(cpu, var.home)
            spin_instr = imbalance_wait / self._spin_cpi
            poll_wait = sync_cycles - pre_cost - transit
            polls = poll_wait / transit if poll_wait > 0.0 else 0.0

            counters = self.counters[cpu]
            gt = self.gt[cpu]
            counters.graduated_instructions += self._pre_instr + 1 + polls + spin_instr
            counters.graduated_stores += 1  # the fetchop
            counters.graduated_loads += polls + spin_instr / 2.0
            counters.store_exclusive_to_shared += 1  # event 31 == ntsyn source
            gt.sync_cycles += sync_cycles
            gt.sync_instructions += self._pre_instr + 1 + polls
            gt.spin_cycles += imbalance_wait
            gt.spin_instructions += spin_instr
            gt.barriers += 1

            clocks[cpu] = release
            arrivals.append(issue[cpu])
            fetchop_done.append(done[cpu])
            spins.append(release - done[cpu])
            release_times[cpu] = release

        return BarrierOutcome(
            release_time=max(release_times.values()),
            arrivals=arrivals,
            fetchop_done=fetchop_done,
            spin_cycles=spins,
        )

    # -- lock / critical section -----------------------------------------------------------

    def lock_section(
        self,
        var: SyncVariable,
        clocks: list[float],
        cpi0: float,
        cs_instructions: int,
        participants: list[int] | None = None,
    ) -> None:
        """Every participant passes through one critical section, serialized.

        Acquire = fetchop (serialized at the home); the critical section
        runs ``cs_instructions`` at ``cpi0``; release = second fetchop.
        Waiting processors spin.  Used by lock-based workloads and the
        synchronization micro-kernels.
        """
        cpus = list(range(len(clocks))) if participants is None else list(participants)
        if not cpus:
            raise ConfigError("lock_section with no participants")
        if cs_instructions < 0:
            raise ConfigError("cs_instructions must be >= 0")

        order = sorted(cpus, key=lambda c: clocks[c])
        lock_free = 0.0
        for cpu in order:
            counters = self.counters[cpu]
            gt = self.gt[cpu]
            arrive = clocks[cpu]
            transit = self._transit(cpu, var.home)
            acquire_latency = transit + self._t_service
            earliest_hold = arrive + acquire_latency
            start_hold = earliest_hold if earliest_hold > lock_free else lock_free
            wait_cycles = start_hold - earliest_hold
            cs_cycles = cs_instructions * cpi0
            release_latency = transit + self._t_service
            end = start_hold + cs_cycles + release_latency
            lock_free = end

            # Lock waiting polls the uncached fetchop word (mp_lock_try is
            # one of the paper's *synchronization* routines), so contention
            # is booked as sync, not load imbalance.
            polls = wait_cycles / transit if transit > 0 else 0.0
            counters.graduated_instructions += 2 + cs_instructions + polls
            counters.graduated_stores += 2  # acquire + release fetchops
            counters.graduated_loads += polls
            counters.store_exclusive_to_shared += 2
            gt.sync_cycles += acquire_latency + release_latency + wait_cycles
            gt.sync_instructions += 2 + polls
            gt.compute_cycles += cs_cycles
            gt.compute_instructions += cs_instructions
            gt.lock_acquires += 1

            clocks[cpu] = end
