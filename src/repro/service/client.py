"""A minimal urllib client for the analysis service HTTP API.

Mirrors the server's backpressure semantics: a 429/503 raises
:class:`~repro.errors.QueueFullError` carrying the server's
``Retry-After`` advice, and :meth:`ServiceClient.submit` can optionally
retry-with-backoff on the caller's behalf.  Used by ``scaltool submit``
/ ``status`` / ``result`` and the service load benchmark.

Trace propagation: by default (``SCALTOOL_TRACE`` unset or truthy) every
submit generates a fresh W3C-style trace context and sends it as
``traceparent`` / ``tracestate`` headers, so the server can stitch the
whole job — client intent, HTTP hop, queue wait, batching, worker runs —
into one span tree queryable via ``scaltool obs trace <job-id>``.
``ServiceClient(trace=False)`` (or ``SCALTOOL_TRACE=0``) sends no
headers at all.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.parse
import urllib.request

from ..errors import (
    JobNotFoundError,
    QueueFullError,
    ServiceError,
    StoreUnavailableError,
)
from ..obs.trace import (
    TRACEPARENT_HEADER,
    TRACESTATE_HEADER,
    TraceContext,
    enabled_from_env,
    format_tracestate,
)

__all__ = ["ServiceClient", "DEFAULT_URL", "default_service_url"]

DEFAULT_URL = "http://127.0.0.1:8032"
_ENV_VAR = "SCALTOOL_SERVICE_URL"


def default_service_url() -> str:
    """$SCALTOOL_SERVICE_URL, or the local default."""
    return os.environ.get(_ENV_VAR, DEFAULT_URL)


class ServiceClient:
    """Talk to a running ``scaltool serve`` instance."""

    def __init__(
        self,
        base_url: str | None = None,
        timeout: float = 30.0,
        trace: bool | None = None,
    ) -> None:
        self.base_url = (base_url or default_service_url()).rstrip("/")
        self.timeout = timeout
        self.trace_enabled = enabled_from_env() if trace is None else bool(trace)

    # -- transport --------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict]:
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except json.JSONDecodeError:
                payload = {}
            message = payload.get("error", f"HTTP {exc.code}")
            if exc.code == 503 and payload.get("status") == "degraded":
                raise StoreUnavailableError(message) from None
            if exc.code in (429, 503):
                raise QueueFullError(
                    message,
                    retry_after=float(
                        payload.get("retry_after", exc.headers.get("Retry-After", 1))
                    ),
                    draining=exc.code == 503,
                ) from None
            if exc.code == 404:
                raise JobNotFoundError(message) from None
            raise ServiceError(message) from None
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise ServiceError(f"cannot reach service at {self.base_url}: {exc}") from exc

    # -- API --------------------------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` view — returned even when the server answers
        503 for a degraded store, since the body carries the diagnosis."""
        req = urllib.request.Request(self.base_url + "/healthz", method="GET")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                return json.loads(exc.read() or b"{}")
            except json.JSONDecodeError:
                raise ServiceError(f"health check failed: HTTP {exc.code}") from None
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise ServiceError(f"cannot reach service at {self.base_url}: {exc}") from exc

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")[1]

    def jobs(
        self,
        limit: int | None = None,
        offset: int = 0,
        state: str | None = None,
        fingerprint: str | None = None,
        since: float | None = None,
    ) -> list[dict]:
        """Job summaries, optionally filtered/paginated server-side."""
        return self.jobs_page(
            limit=limit, offset=offset, state=state, fingerprint=fingerprint, since=since
        )["jobs"]

    def jobs_page(
        self,
        limit: int | None = None,
        offset: int = 0,
        state: str | None = None,
        fingerprint: str | None = None,
        since: float | None = None,
    ) -> dict:
        """The full ``GET /v1/jobs`` page: ``{"jobs","total","limit","offset"}``."""
        params = []
        if limit is not None:
            params.append(f"limit={int(limit)}")
        if offset:
            params.append(f"offset={int(offset)}")
        if state is not None:
            params.append(f"state={urllib.parse.quote(state)}")
        if fingerprint is not None:
            params.append(f"fingerprint={urllib.parse.quote(fingerprint)}")
        if since is not None:
            params.append(f"since={float(since)}")
        query = "?" + "&".join(params) if params else ""
        return self._request("GET", f"/v1/jobs{query}")[1]

    def submit(
        self,
        kind: str,
        payload: dict | None = None,
        priority: int | None = None,
        retries: int = 0,
    ) -> dict:
        """Submit a request; returns ``{"id", "state", "deduped", "trace_id"?}``.

        ``retries > 0`` makes the client honour 429 backpressure itself:
        it sleeps the server's ``Retry-After`` and resubmits, up to
        ``retries`` times, before letting :class:`QueueFullError` out.

        With tracing on, each submit (including each backoff retry)
        carries a fresh ``traceparent``; the server answers with the
        ``trace_id`` the job actually joined (an earlier submitter's for
        deduped jobs).
        """
        body: dict = {"kind": kind, "payload": payload or {}}
        if priority is not None:
            body["priority"] = priority
        attempt = 0
        while True:
            headers = None
            if self.trace_enabled:
                ctx = TraceContext.new_root()
                headers = {
                    TRACEPARENT_HEADER: ctx.to_traceparent(),
                    TRACESTATE_HEADER: format_tracestate("client.submit"),
                }
            try:
                return self._request("POST", "/v1/jobs", body, headers=headers)[1]
            except QueueFullError as exc:
                if exc.draining or attempt >= retries:
                    raise
                attempt += 1
                time.sleep(exc.retry_after)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")[1]

    def result(self, job_id: str) -> dict:
        """The result view: may still be pending (``state`` != done/failed)."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")[1]

    def wait(self, job_id: str, timeout: float = 300.0, poll: float = 0.1) -> dict:
        """Poll until the job is done or failed; returns the result view."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.result(job_id)
            if view["state"] in ("done", "failed"):
                return view
            if time.monotonic() >= deadline:
                raise ServiceError(f"timed out waiting for job {job_id}")
            time.sleep(poll)

    def trace(self, job_id: str) -> dict:
        """The job's distributed span tree (see ``scaltool obs trace``)."""
        return self._request("GET", f"/v1/jobs/{job_id}/trace")[1]

    def lineage(self, job_id: str) -> dict:
        """The job's result lineage (see ``scaltool explain``)."""
        return self._request("GET", f"/v1/jobs/{job_id}/lineage")[1]

    def blame(self, job_id: str) -> dict:
        """The job's scaling-loss blame report (see ``scaltool blame``)."""
        return self._request("GET", f"/v1/jobs/{job_id}/blame")[1]

    def metrics(self) -> str:
        """The raw Prometheus text exposition from ``GET /metrics``."""
        req = urllib.request.Request(self.base_url + "/metrics", method="GET")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.read().decode()
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise ServiceError(f"cannot reach service at {self.base_url}: {exc}") from exc

    def drain(self, timeout: float | None = None) -> bool:
        body = {} if timeout is None else {"timeout": timeout}
        return self._request("POST", "/v1/drain", body)[1]["drained"]
