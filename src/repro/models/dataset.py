"""The speedup-curve dataset: one schema for simulator and external data.

Everything in :mod:`repro.models` fits against a :class:`SpeedupDataset` —
a measured (n, time, speedup) curve with optional per-point confidence
intervals.  The same dataset comes from three places:

* a finished campaign (:meth:`SpeedupDataset.from_campaign` reads the
  base-size runs' wall cycles — what ``scaltool campaign
  --export-speedup`` writes out);
* an external CSV with columns ``n,time,speedup,ci_lo,ci_hi`` (``time``
  and the CI columns optional; ``speedup`` derived from ``time`` against
  the n=1 row when absent);
* a JSON document ``{"schema": "scaltool-speedup-v1", "label": ...,
  "points": [{"n": ..., "time": ..., "speedup": ..., "ci": [lo, hi]}]}``.

Loading is deliberately lenient (a curve with two points loads fine);
the *fit* layer (:mod:`repro.models.base`) is where degenerate curves
raise typed errors.
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import EstimationError

__all__ = ["SCHEMA", "SpeedupPoint", "SpeedupDataset"]

#: The on-disk schema tag for the JSON form.
SCHEMA = "scaltool-speedup-v1"

_CSV_COLUMNS = ("n", "time", "speedup", "ci_lo", "ci_hi")


@dataclass(frozen=True)
class SpeedupPoint:
    """One measured point of a speedup curve."""

    n: int
    speedup: float
    time: float | None = None  # wall time in any consistent unit (cycles here)
    ci: tuple[float, float] | None = None  # 95% CI on the speedup, if known

    def to_dict(self) -> dict:
        out: dict = {"n": self.n, "speedup": self.speedup}
        if self.time is not None:
            out["time"] = self.time
        if self.ci is not None:
            out["ci"] = [self.ci[0], self.ci[1]]
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "SpeedupPoint":
        ci = d.get("ci")
        return cls(
            n=int(d["n"]),
            speedup=float(d["speedup"]),
            time=None if d.get("time") is None else float(d["time"]),
            ci=None if not ci else (float(ci[0]), float(ci[1])),
        )


@dataclass
class SpeedupDataset:
    """A measured speedup-vs-n curve, sorted by processor count."""

    label: str
    points: list[SpeedupPoint] = field(default_factory=list)
    source: str = ""  # where the curve came from (path / "campaign")

    def __post_init__(self) -> None:
        self.points = sorted(self.points, key=lambda p: p.n)

    # -- views ------------------------------------------------------------------

    @property
    def counts(self) -> list[int]:
        return [p.n for p in self.points]

    @property
    def speedups(self) -> list[float]:
        return [p.speedup for p in self.points]

    def speedup_at(self, n: int) -> float | None:
        for p in self.points:
            if p.n == n:
                return p.speedup
        return None

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_campaign(cls, campaign, label: str | None = None) -> "SpeedupDataset":
        """The measured curve of a campaign's base-size runs.

        ``time`` is the run's wall cycles; speedups are relative to the
        uniprocessor run, matching
        :meth:`repro.core.bottlenecks.BottleneckCurves.speedups`.
        """
        base = campaign.base_runs()
        if not base or 1 not in base:
            raise EstimationError(
                "campaign has no 1-processor base run to anchor speedups",
                inputs={"workload": campaign.workload, "counts": sorted(base)},
            )
        w1 = base[1].wall_cycles
        if w1 <= 0:
            raise EstimationError(
                "1-processor wall cycles are not positive",
                inputs={"workload": campaign.workload, "wall_cycles": w1},
            )
        points = [
            SpeedupPoint(n=n, speedup=w1 / base[n].wall_cycles, time=base[n].wall_cycles)
            for n in sorted(base)
            if base[n].wall_cycles > 0
        ]
        return cls(label=label or campaign.workload, points=points, source="campaign")

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "label": self.label,
            "source": self.source,
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SpeedupDataset":
        if not isinstance(d, dict) or not isinstance(d.get("points"), list):
            raise EstimationError(
                "speedup dataset needs a 'points' list",
                inputs={"keys": sorted(d) if isinstance(d, dict) else type(d).__name__},
            )
        try:
            points = [SpeedupPoint.from_dict(p) for p in d["points"]]
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise EstimationError(
                f"malformed speedup point: {exc}", inputs={"points": d["points"]}
            ) from exc
        return cls(
            label=str(d.get("label", "dataset")),
            points=points,
            source=str(d.get("source", "")),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(_CSV_COLUMNS)
        for p in self.points:
            writer.writerow(
                [
                    p.n,
                    "" if p.time is None else repr(p.time),
                    repr(p.speedup),
                    "" if p.ci is None else repr(p.ci[0]),
                    "" if p.ci is None else repr(p.ci[1]),
                ]
            )
        return buf.getvalue()

    def save(self, path: str | Path) -> Path:
        """Write the curve as CSV (``.csv``) or JSON (anything else)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix.lower() == ".csv":
            path.write_text(self.to_csv())
        else:
            path.write_text(self.to_json())
        return path

    @classmethod
    def from_csv(cls, text: str, label: str = "dataset", source: str = "") -> "SpeedupDataset":
        reader = csv.DictReader(io.StringIO(text))
        if reader.fieldnames is None or "n" not in reader.fieldnames:
            raise EstimationError(
                "speedup CSV needs a header with at least an 'n' column",
                inputs={"header": reader.fieldnames},
            )
        rows = []
        for i, row in enumerate(reader):
            try:
                n = int(row["n"])
                time = float(row["time"]) if row.get("time") else None
                speedup = float(row["speedup"]) if row.get("speedup") else None
                lo = float(row["ci_lo"]) if row.get("ci_lo") else None
                hi = float(row["ci_hi"]) if row.get("ci_hi") else None
            except (TypeError, ValueError) as exc:
                raise EstimationError(
                    f"bad speedup CSV row {i + 2}: {exc}", inputs={"row": dict(row)}
                ) from exc
            rows.append((n, time, speedup, (lo, hi) if lo is not None and hi is not None else None))
        # Derive missing speedups from times against the n=1 row.
        t1 = next((t for n, t, _, _ in rows if n == 1 and t), None)
        points = []
        for n, time, speedup, ci in rows:
            if speedup is None:
                if t1 is None or not time:
                    raise EstimationError(
                        "CSV row has no speedup and no n=1 time to derive it from",
                        inputs={"n": n, "time": time},
                    )
                speedup = t1 / time
            points.append(SpeedupPoint(n=n, speedup=speedup, time=time, ci=ci))
        return cls(label=label, points=points, source=source)

    @classmethod
    def load(cls, path: str | Path) -> "SpeedupDataset":
        """Load a curve from disk, sniffing CSV vs JSON from the content."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise EstimationError(f"cannot read speedup dataset: {exc}") from exc
        stripped = text.lstrip()
        if stripped.startswith("{"):
            try:
                doc = json.loads(text)
            except json.JSONDecodeError as exc:
                raise EstimationError(
                    f"{path} is not valid JSON: {exc}", inputs={"path": str(path)}
                ) from exc
            ds = cls.from_dict(doc)
        else:
            ds = cls.from_csv(text, label=path.stem)
        ds.source = str(path)
        if not ds.label or ds.label == "dataset":
            ds.label = path.stem
        for p in ds.points:
            if not math.isfinite(p.speedup):
                raise EstimationError(
                    "speedup dataset holds a non-finite speedup",
                    inputs={"n": p.n, "speedup": p.speedup, "path": str(path)},
                )
        return ds
