"""What-if engine (Section 2.6)."""

import pytest

from repro.core import ScalTool, WhatIf
from repro.errors import InsufficientDataError


@pytest.fixture(scope="module")
def whatif(mini_campaign):
    analysis = ScalTool(mini_campaign).analyze()
    return WhatIf(analysis, mini_campaign)


class TestParameterScaling:
    def test_identity_returns_measured(self, whatif, mini_campaign):
        pred = whatif.scale_parameters()
        for n, rec in mini_campaign.base_runs().items():
            assert pred.predicted[n] == pytest.approx(rec.counters.cycles)
            assert pred.change(n) == pytest.approx(0.0)

    def test_slower_memory_slower_run(self, whatif):
        pred = whatif.scale_parameters(tm_factor=2.0)
        assert all(pred.predicted[n] >= pred.baseline[n] for n in pred.baseline)

    def test_faster_memory_faster_run(self, whatif):
        pred = whatif.scale_parameters(tm_factor=0.5)
        assert any(pred.predicted[n] < pred.baseline[n] for n in pred.baseline)

    def test_faster_sync_helps_more_at_scale(self, whatif):
        pred = whatif.scale_parameters(tsyn_factor=0.25)
        saved = {n: pred.baseline[n] - pred.predicted[n] for n in pred.baseline}
        assert saved[4] >= saved[1]

    def test_wider_issue_scales_compute(self, whatif):
        pred = whatif.scale_parameters(cpi0_factor=0.5)
        assert pred.predicted[1] < pred.baseline[1]

    def test_rows(self, whatif):
        rows = whatif.scale_parameters(t2_factor=2.0).rows()
        assert {"n", "baseline", "predicted", "change"} <= set(rows[0])


class TestL2Scaling:
    def test_bigger_l2_lowers_miss_rate(self, whatif):
        for n in (1, 2, 4):
            now = 1.0 - whatif.analysis.cache.measured_l2hitr_by_n[n]
            with_4x = whatif.l2_miss_rate_with_factor(n, 4.0)
            assert with_4x <= now + 0.05

    def test_coherence_component_preserved(self, whatif):
        # even an infinite L2 keeps the coherence misses
        for n in (2, 4):
            rate = whatif.l2_miss_rate_with_factor(n, 1e6)
            assert rate >= whatif.analysis.cache.coherence(n) - 1e-9

    def test_prediction_cycles_drop(self, whatif):
        pred = whatif.scale_l2(8.0)
        assert pred.predicted[1] <= pred.baseline[1]
        assert pred.note  # "the application is not re-run"

    def test_bad_factor(self, whatif):
        with pytest.raises(InsufficientDataError):
            whatif.l2_miss_rate_with_factor(1, 0.0)


class TestNewSyncPrimitive:
    def test_free_sync_saves_cost(self, whatif):
        pred = whatif.new_sync_primitive(tsyn_new=0.0)
        assert all(pred.predicted[n] <= pred.baseline[n] for n in pred.baseline)

    def test_notes_imbalance_caveat(self, whatif):
        assert "imbalance" in whatif.new_sync_primitive(1.0).note


class TestBatchExecution:
    EXPERIMENTS = [
        {"kind": "scale", "tm_factor": 0.5},
        {"kind": "l2", "k": 4.0},
        {"kind": "sync", "tsyn": 0.0, "label": "free sync"},
    ]

    def test_predict_dispatches_by_kind(self, whatif):
        scale, l2, sync = whatif.run_experiments(self.EXPERIMENTS)
        assert scale.label == whatif.scale_parameters(tm_factor=0.5).label
        assert l2.label == whatif.scale_l2(4.0).label
        assert sync.label == "free sync"

    def test_unknown_kind_rejected(self, whatif):
        with pytest.raises(InsufficientDataError, match="kind"):
            whatif.predict({"kind": "overclock"})

    def test_parallel_matches_serial(self, whatif):
        from repro.runner.engine import ParallelExecutor

        serial = whatif.run_experiments(self.EXPERIMENTS)
        parallel = whatif.run_experiments(
            self.EXPERIMENTS, executor=ParallelExecutor(jobs=2)
        )
        assert serial == parallel
