"""The global obs switch: sessions, nesting, and disabled-mode no-ops."""

from repro.obs import runtime as obs
from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry
from repro.obs.spans import NOOP_TRACER, Tracer


class TestSwitch:
    def test_disabled_by_default(self):
        assert obs.active() is None
        assert not obs.is_enabled()
        assert obs.tracer() is NOOP_TRACER
        assert obs.registry() is NOOP_REGISTRY

    def test_enable_disable_roundtrip(self):
        s = obs.enable()
        try:
            assert obs.active() is s
            assert obs.is_enabled()
            assert isinstance(obs.tracer(), Tracer)
            assert isinstance(obs.registry(), MetricsRegistry)
            assert obs.tracer() is s.tracer
        finally:
            assert obs.disable() is s
        assert obs.active() is None

    def test_sessions_nest(self):
        outer = obs.enable()
        inner = obs.enable()
        assert obs.active() is inner
        obs.disable()
        assert obs.active() is outer
        obs.disable()
        assert obs.active() is None

    def test_disable_when_inactive_is_harmless(self):
        assert obs.disable() is None

    def test_session_context_manager(self):
        with obs.session() as s:
            assert obs.active() is s
            s.registry.inc("x")
        assert obs.active() is None
        # Data stays readable after the session ends.
        assert s.registry.counter("x") == 1.0

    def test_session_disables_on_exception(self):
        try:
            with obs.session():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert obs.active() is None

    def test_session_unwinds_leaked_enables(self):
        with obs.session() as s:
            obs.enable()  # leaked by the block
            assert obs.active() is not s
        assert obs.active() is None


class TestInstrumentedLayersRespectTheSwitch:
    """Disabled-mode no-op behaviour through the real instrumented code."""

    def _run(self):
        from tests.conftest import small_synthetic, tiny_machine_config
        from repro.machine.system import DsmMachine

        machine = DsmMachine(tiny_machine_config(n_processors=2))
        return machine.run(small_synthetic(), 4096)

    def test_machine_run_disabled_records_nothing(self):
        assert obs.active() is None
        self._run()
        assert NOOP_TRACER.records == []
        assert NOOP_REGISTRY.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_machine_run_enabled_records_spans_and_metrics(self):
        with obs.session() as s:
            self._run()
        names = {r.name for r in s.tracer.records}
        assert "machine.run" in names
        assert "machine.phase" in names
        assert "machine.component.cache" in names
        assert "machine.component.coherence" in names
        assert "machine.component.interconnect" in names
        assert s.registry.counter("machine.runs") == 1.0
        assert s.registry.counter("machine.refs") > 0
        assert s.registry.histogram("machine.run_seconds").count == 1

    def test_identical_results_enabled_vs_disabled(self):
        disabled = self._run()
        with obs.session():
            enabled = self._run()
        assert disabled.counters.to_dict() == enabled.counters.to_dict()
        assert disabled.wall_cycles == enabled.wall_cycles

    def test_component_span_shares_sum_to_one(self):
        with obs.session() as s:
            self._run()
        shares = [
            r.attrs["share"]
            for r in s.tracer.records
            if r.name.startswith("machine.component.")
        ]
        assert len(shares) == 6
        assert abs(sum(shares) - 1.0) < 1e-3
