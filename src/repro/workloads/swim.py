"""Swim: shallow-water finite-difference model (paper Table 4, Section 4.3).

The real Swim (SPECFP95, 512x512 grid, 100 iterations) is a shallow-water
stencil code parallelised with MP DOACROSS.  The paper reports a 16.2 MB
footprint, *good* scalability (speedup ~24 at 32 processors) with good load
balance; the limited-caching-space effect is negligible, load imbalance
dominates what overhead exists, and — importantly for validation — Swim has
a small amount of *non-synchronization data sharing* that contaminates the
ntsyn counter and makes Scal-Tool's MP estimate diverge from the speedshop
measurement by ~14% at 32 processors (Figure 13).

The model reproduces those traits:

* six grid arrays; each of the three per-time-step phases (the real
  code's CALC1/2/3) reads one "old" array and writes one "new" array —
  phase-to-phase reuse of the freshly written array is what keeps the
  real Swim's conflict misses small despite the footprint, and the model
  inherits it because each array (1/6 of the data set) fits the L2;
* high intra-line reuse (``refs_per_block``, the real code's ~4 doubles
  x several stencil taps per 32-byte line) keeping the miss overhead low;
* halo reads of the neighbouring partitions' boundary blocks (true
  sharing: boundary blocks written by their owner each step and re-read
  by the neighbour -> coherence misses + data upgrades in event 31);
* a mild deterministic per-(cpu, iteration) work jitter
  (``imbalance_amp``) standing in for the real code's boundary-row
  remainder work — "good" but not perfect balance;
* one barrier per phase (DOACROSS join), so synchronization stays light.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..errors import WorkloadError
from ..trace.events import Phase, Segment, make_segment
from ..trace.generators import stencil_sweep, sweep
from ..trace.synth import concat_traces, interleave_traces
from ..units import MB
from .base import Workload

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.system import DsmMachine

__all__ = ["Swim"]


class Swim(Workload):
    """Balanced stencil code with halo sharing: the near-linear scaler."""

    name = "swim"
    cpi0 = 1.2
    m_frac = 0.38
    paper_footprint_bytes = int(16.2 * MB)  # measured by ssusage in the paper
    parallel_model = "MP directives with DOACROSS"
    source = "SPECFP95"
    what_it_does = "Shallow water simulation"

    def __init__(
        self,
        iters: int = 6,
        refs_per_block: int = 16,
        halo_blocks: int = 1,
        imbalance_amp: float = 0.22,
        seed: int = 1234,
    ) -> None:
        super().__init__(iters=iters, seed=seed)
        if halo_blocks < 0:
            raise WorkloadError("halo_blocks must be >= 0")
        if not (0.0 <= imbalance_amp < 1.0):
            raise WorkloadError("imbalance_amp must be in [0, 1)")
        self.refs_per_block = refs_per_block
        self.halo_blocks = halo_blocks
        self.imbalance_amp = imbalance_amp

    def describe_params(self) -> dict:
        return {
            "iters": self.iters,
            "refs_per_block": self.refs_per_block,
            "halo_blocks": self.halo_blocks,
            "imbalance_amp": self.imbalance_amp,
            "seed": self.seed,
        }

    def build(self, machine: "DsmMachine", size_bytes: int) -> Iterator[Phase]:
        nb = self.blocks_for(machine, size_bytes)
        n = machine.n_processors
        per_array = max(n, nb // 6)
        names = ("u", "v", "p", "unew", "vnew", "pnew")
        arrays = [machine.allocator.alloc(name, per_array) for name in names]

        init_segs: list[Segment | None] = []
        for cpu in range(n):
            frags = [
                sweep(reg.slice_for(cpu, n), refs_per_block=1, write_frac=1.0,
                      rng=np.random.default_rng(self.seed + cpu))
                for reg in arrays
            ]
            a, w = concat_traces(*frags)
            init_segs.append(make_segment(a, w, m_frac=self.m_frac))
        yield Phase(name="init", segments=init_segs, barrier=True)

        jitter_rng = np.random.default_rng(self.seed * 65537)

        for it in range(self.iters):
            # Per-iteration jitter: which cpus carry the remainder rows this
            # step (deterministic given the seed).
            jitter = jitter_rng.uniform(-self.imbalance_amp, self.imbalance_amp, size=n)
            for calc in range(3):
                # CALC k reads old array k, writes new array k; after the
                # time step the roles swap, so the freshly written array is
                # re-read next iteration (phase-to-phase reuse).
                old = arrays[calc] if it % 2 == 0 else arrays[calc + 3]
                new = arrays[calc + 3] if it % 2 == 0 else arrays[calc]
                segs: list[Segment | None] = []
                for cpu in range(n):
                    rng = np.random.default_rng(self.seed * 947 + it * 31 + calc * 7 + cpu)
                    own_old = old.slice_for(cpu, n)
                    own_new = new.slice_for(cpu, n)
                    halo_lo = halo_hi = None
                    if self.halo_blocks and n > 1:
                        lo_n = old.slice_for((cpu - 1) % n, n)
                        hi_n = old.slice_for((cpu + 1) % n, n)
                        halo_lo = range(max(lo_n.stop - self.halo_blocks, lo_n.start), lo_n.stop)
                        halo_hi = range(hi_n.start, min(hi_n.start + self.halo_blocks, hi_n.stop))
                    a_old, w_old = stencil_sweep(
                        own_old,
                        halo_lo=halo_lo,
                        halo_hi=halo_hi,
                        refs_per_block=self.refs_per_block,
                        write_frac=0.0,
                        rng=rng,
                    )
                    a_new, w_new = sweep(
                        own_new,
                        refs_per_block=max(1, self.refs_per_block // 2),
                        write_frac=0.8,
                        rng=rng,
                    )
                    a, w = interleave_traces(
                        (a_old, w_old), (a_new, w_new),
                        granularity=self.refs_per_block,
                    )
                    extra = int(len(a) / self.m_frac * max(0.0, jitter[cpu]))
                    segs.append(make_segment(a, w, m_frac=self.m_frac, extra_instructions=extra))
                yield Phase(name=f"calc{calc + 1}_{it}", segments=segs, barrier=True)
