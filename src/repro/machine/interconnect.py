"""NUMA interconnect topologies and distance model.

The Origin 2000 connects pairs of nodes ("bristles") to routers arranged in
a hypercube; remote memory latency grows with the router-hop distance, which
is what makes the paper's ``tm(n)`` increase with the processor count.  We
implement the bristled hypercube plus three alternatives (2-D mesh, ring,
crossbar) so experiments can vary the latency-growth law.

Distances are symmetric, zero on the same router, and satisfy the triangle
inequality for every built-in topology (property-tested).
"""

from __future__ import annotations

import math
from functools import lru_cache

from ..errors import ConfigError
from .config import InterconnectConfig

__all__ = ["Interconnect"]


class Interconnect:
    """Distance oracle for one machine instance."""

    def __init__(self, cfg: InterconnectConfig, n_processors: int) -> None:
        if n_processors < 1:
            raise ConfigError("n_processors must be >= 1")
        self.cfg = cfg
        self.n_processors = n_processors
        self.n_routers = (n_processors + cfg.bristle - 1) // cfg.bristle
        self._router = [cpu // cfg.bristle for cpu in range(n_processors)]
        if cfg.topology == "mesh":
            self._mesh_w = max(1, math.isqrt(self.n_routers))
            if self._mesh_w * self._mesh_w < self.n_routers:
                self._mesh_w += 1
        dispatch = {
            "hypercube": self._hops_hypercube,
            "mesh": self._hops_mesh,
            "ring": self._hops_ring,
            "crossbar": self._hops_crossbar,
        }
        self._router_hops = dispatch[cfg.topology]
        # Precompute the cpu->cpu distance table: n is at most a few dozen,
        # and the per-access hot path then reduces to one indexed load.
        self.table = [
            [self._router_hops(self._router[a], self._router[b]) for b in range(n_processors)]
            for a in range(n_processors)
        ]
        # Traversal tallies (observability): the coherence controller bumps
        # these inline on every network transaction it charges.  Two integer
        # adds per L2 miss, orders of magnitude off the per-reference hot
        # path, so they stay on unconditionally; reset per run.
        self.traversals = 0
        self.hop_total = 0

    def reset_obs(self) -> None:
        """Zero the traversal tallies (called at machine reset)."""
        self.traversals = 0
        self.hop_total = 0

    def mean_traversal_hops(self) -> float:
        """Mean hops per recorded traversal since the last reset."""
        return self.hop_total / self.traversals if self.traversals else 0.0

    # -- per-topology router distances --------------------------------------

    @staticmethod
    def _hops_hypercube(a: int, b: int) -> int:
        return (a ^ b).bit_count()

    def _hops_mesh(self, a: int, b: int) -> int:
        w = self._mesh_w
        ax, ay = a % w, a // w
        bx, by = b % w, b // w
        return abs(ax - bx) + abs(ay - by)

    def _hops_ring(self, a: int, b: int) -> int:
        d = abs(a - b)
        return min(d, self.n_routers - d)

    @staticmethod
    def _hops_crossbar(a: int, b: int) -> int:
        return 0 if a == b else 1

    # -- public API ----------------------------------------------------------

    def router_of(self, cpu: int) -> int:
        """Router a processor is attached to."""
        return self._router[cpu]

    def hops(self, cpu_a: int, cpu_b: int) -> int:
        """Router-hop distance between two processors."""
        return self.table[cpu_a][cpu_b]

    def is_local(self, cpu: int, home: int) -> bool:
        """True when ``home`` is the processor's own node (no network)."""
        return cpu == home

    @lru_cache(maxsize=None)
    def diameter(self) -> int:
        """Maximum hop distance in the machine."""
        return max(max(row) for row in self.table)

    @lru_cache(maxsize=None)
    def mean_distance(self) -> float:
        """Mean cpu-to-cpu hop distance over all ordered pairs (incl. self).

        This is the expected distance of a uniformly-placed remote access
        and is the analytic knob behind the ``tm(n)`` growth curve.
        """
        n = self.n_processors
        return sum(sum(row) for row in self.table) / (n * n)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.cfg.topology} ({self.n_routers} routers x {self.cfg.bristle} cpus, "
            f"diameter {self.diameter()}, mean distance {self.mean_distance():.2f})"
        )
