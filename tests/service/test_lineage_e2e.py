"""End-to-end result lineage and diagnostics through the live service.

The tentpole's acceptance path: an ``analyze`` job on a live server must
come back with a :class:`~repro.obs.lineage.Lineage` record (correct
cache hit/miss split, the job's trace id), readable via
``GET /v1/jobs/<id>/lineage``; the ``diagnostics.health`` gauge family
must appear on ``/metrics``; and ``scaltool explain`` / ``scaltool
doctor`` must work *offline* against the persisted job store.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.core import ServiceConfig
from repro.service.http import ServiceServer

from .conftest import WARM_PAYLOAD


class TestLineageEndToEnd:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        """One cold analyze job on a live server, shared by every check."""
        root = tmp_path_factory.mktemp("lineage-e2e")
        srv = ServiceServer(ServiceConfig(cache_dir=root, jobs=1), port=0).start()
        client = ServiceClient(srv.url, timeout=60)
        try:
            cold = client.submit("analyze", WARM_PAYLOAD)
            client.wait(cold["id"], timeout=300)
            cold_lineage = client.lineage(cold["id"])
            metrics_text = client.metrics()
        finally:
            srv.shutdown(drain_timeout=60)
        return {
            "root": root,
            "job_id": cold["id"],
            "lineage": cold_lineage,
            "metrics": metrics_text,
        }

    def test_lineage_view_shape(self, served):
        view = served["lineage"]
        assert view["job"] == served["job_id"]
        assert view["kind"] == "analyze"
        assert view["state"] == "done"
        assert view["health"] == "ok"

    def test_cold_job_records_executed_specs(self, served):
        lin = served["lineage"]["lineage"]
        assert lin["cache_misses"] > 0
        assert lin["cache_hits"] + lin["cache_misses"] == len(lin["specs"])
        # every spec entry is fully addressed
        for entry in lin["specs"]:
            assert entry["key"] and entry["workload"] and entry["machine_hash"]
        # the analyzed workload itself contributed runs
        assert any(e["workload"] == "synthetic" for e in lin["specs"])

    def test_lineage_carries_the_job_trace_id(self, served):
        assert served["lineage"]["lineage"]["trace_id"]

    def test_metrics_exports_health_gauge_family(self, served):
        text = served["metrics"]
        assert 'scaltool_diagnostics_health{grade="ok"} 1' in text
        assert 'scaltool_diagnostics_health{grade="suspect"} 0' in text

    def test_warm_resubmit_is_all_cache_hits(self, served):
        # the job id is a content address, so drop the stored done job to
        # force re-execution — now against a warm run cache
        (served["root"] / "service" / "jobs" / f"{served['job_id']}.json").unlink()
        srv = ServiceServer(
            ServiceConfig(cache_dir=served["root"], jobs=1), port=0
        ).start()
        client = ServiceClient(srv.url, timeout=60)
        try:
            job = client.submit("analyze", WARM_PAYLOAD)
            client.wait(job["id"], timeout=300)
            lin = client.lineage(job["id"])["lineage"]
        finally:
            srv.shutdown(drain_timeout=60)
        assert lin["cache_misses"] == 0
        assert lin["cache_hits"] == len(lin["specs"]) > 0
        assert all(e["cached"] for e in lin["specs"])

    def test_lineage_of_pending_job_rejected(self, served):
        srv = ServiceServer(
            ServiceConfig(cache_dir=served["root"], jobs=1), port=0
        ).start()
        try:
            with pytest.raises(ServiceError):
                srv.service.lineage("j" + "0" * 16)
        finally:
            srv.shutdown(drain_timeout=60)

    # -- offline CLI over the persisted store ---------------------------------

    def test_explain_reads_the_job_store_offline(self, served, capsys):
        rc = main(["explain", served["job_id"], "--cache-dir", str(served["root"])])
        out = capsys.readouterr().out
        assert rc == 0
        assert "result lineage" in out
        assert "estimation diagnostics: ok" in out
        assert "t2_tm_fit" in out

    def test_explain_json_mode(self, served, capsys):
        rc = main(
            ["explain", served["job_id"], "--cache-dir", str(served["root"]), "--json"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["lineage"]["kind"] == "analyze"
        assert doc["diagnostics"]["health"] == "ok"

    def test_doctor_passes_on_a_healthy_job(self, served, capsys):
        rc = main(["doctor", served["job_id"], "--cache-dir", str(served["root"])])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verdict: ok" in out

    def test_doctor_fails_on_a_suspect_result(self, served, tmp_path, capsys):
        job_path = served["root"] / "service" / "jobs" / f"{served['job_id']}.json"
        record = json.loads(job_path.read_text())
        checks = record["result"]["data"]["diagnostics"]["checks"]
        fit = next(c for c in checks if c["name"] == "t2_tm_fit")
        # poison the *evidence*, not the grade: doctor re-derives grades
        fit["details"]["rank_deficient"] = True
        fit["grade"] = "ok"
        fit["flags"] = []
        record["result"]["data"]["diagnostics"]["health"] = "ok"
        doctored = tmp_path / "tampered.json"
        doctored.write_text(json.dumps(record))
        rc = main(["doctor", str(doctored)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "SUSPECT" in captured.err
        assert "NO" in captured.out  # the stored-vs-revalidated disagreement

    def test_explain_unknown_job_names_the_store(self, served, capsys):
        rc = main(["explain", "j" + "f" * 16, "--cache-dir", str(served["root"])])
        assert rc == 1
        assert "service" in capsys.readouterr().err
