"""Statistical line-level profiler with ambient-span attribution.

Scal-Tool's methodology leaned on SpeedShop PC sampling to attribute
cycles to routines; this module gives the reproduction the same power
over *itself*.  A :class:`Sampler` runs a watcher thread that wakes
every ``interval_s`` seconds, grabs the target thread's stack via
``sys._current_frames()``, and folds it into a :class:`SampleProfile`
keyed by ``(span path, frame stack)`` — so every sample is attributed
to the obs span that was open when it was taken (``profile/
campaign.run/engine.run/engine.execute/machine.run/machine.phase``),
and hot lines can be reported per engine phase / workload segment, not
just globally.

Everything is stdlib-only.  The design choices:

* **Watcher thread, not SIGPROF.**  A signal-based sampler can only
  profile the main thread and fights with the service's threaded HTTP
  server; ``sys._current_frames()`` sees every thread and needs no
  signal handler.  The watcher sleeps on an :class:`threading.Event`
  so ``stop()`` is prompt.
* **Folded stacks as the storage format.**  The raw aggregation is the
  collapsed-stack ("folded") flamegraph format — ``span;frame;frame
  count`` — from which per-line self time, per-function cumulative
  time, and per-span totals are all derived deterministically.
* **Span attribution from the live tracer.**  Each tick reads the top
  of the active session's span stack (the same ambient-context idea as
  :mod:`repro.obs.lineage`); when observability is disabled the sample
  lands under the empty span (rendered as ``process``).
* **Self-accounting overhead.**  Every tick measures its own cost;
  :meth:`SampleProfile.overhead_ratio` is the profiled/unprofiled wall
  time estimate that the ``scaltool_profile_overhead_ratio`` gauge and
  the ``bench_profiler_overhead`` budget gate report.
* **GIL-bias mitigation.**  ``sys._current_frames()`` needs the GIL, so
  a pending tick is granted it at whatever point the target thread next
  releases — and C extensions that drop the GIL (NumPy reductions, I/O)
  act as sample magnets: a ~7 µs ``ndarray.min()`` validation call once
  absorbed 48%% of samples while cProfile put it at 0.7%% of wall time.
  Two countermeasures bound the bias: while sampling, the interpreter's
  switch interval is shrunk (to ~``interval_s / 5``) so the watcher is
  force-handed the GIL at a *time-fair* bytecode boundary before most
  release-point magnets can catch it; and each tick's wait is jittered
  around ``interval_s`` (deterministic cycle, mean 1.0) so the sampler
  cannot phase-lock with the interpreter's own 5 ms scheduling quantum.

Disabled mode follows the rest of :mod:`repro.obs`: module-level no-op
singletons (:data:`NOOP_SAMPLER`), no threads, no allocation — engine
code checks :func:`active_sampler` (one global read) and does nothing
when no sampler is live.

Optional memory peaks: ``Sampler(memory=True)`` wraps the window in
``tracemalloc`` and records the peak traced size plus the top
allocating lines.  This is opt-in because tracemalloc's own overhead
(2-4x on allocation-heavy code) would blow the 10% sampling budget.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from .logs import get_logger

__all__ = [
    "SampleProfile",
    "Sampler",
    "NoopSampler",
    "NOOP_SAMPLER",
    "active_sampler",
    "sampler",
    "DEFAULT_INTERVAL_S",
]

_log = get_logger("obs.sampler")

#: Default wake interval: 5 ms ≈ 200 Hz, comfortably under the 10%%
#: overhead budget (one ``sys._current_frames`` walk costs ~10 µs).
DEFAULT_INTERVAL_S = 0.005

#: Leaf-most frames kept per sample; deeper stacks are truncated at the
#: root end so the hot leaf is always preserved.
STACK_DEPTH_LIMIT = 64

#: Root label for samples taken outside any obs span.
ROOT_SPAN = "process"

_FOLD_SEP = ";"

#: Per-tick wait multipliers (mean exactly 1.0).  A fixed-period sampler
#: phase-locks with CPython's 5 ms GIL switch quantum and with any
#: periodic behaviour in the workload; cycling these breaks the lock
#: without needing randomness (ticks stay reproducible in tests).
_TICK_JITTER = (1.0, 0.55, 1.45, 0.8, 1.2, 0.65, 1.35)

# The interpreter switch interval is process-global, and samplers can
# stack (engine parent + service request); refcount so the first start
# shrinks it and only the last stop restores the original.
_switch_lock = threading.Lock()
_switch_depth = 0
_switch_saved = 0.005


def _shrink_switch_interval(target_s: float) -> None:
    global _switch_depth, _switch_saved
    with _switch_lock:
        if _switch_depth == 0:
            _switch_saved = sys.getswitchinterval()
            sys.setswitchinterval(min(_switch_saved, target_s))
        _switch_depth += 1


def _restore_switch_interval() -> None:
    global _switch_depth
    with _switch_lock:
        if _switch_depth > 0:
            _switch_depth -= 1
            if _switch_depth == 0:
                sys.setswitchinterval(_switch_saved)


def _shorten(filename: str) -> str:
    """Stable, machine-independent display path for a code filename.

    Project files are cut at the last ``repro/`` package root (so the
    same frame folds identically in the parent, a pool worker, and a
    service shard regardless of checkout location); everything else
    keeps its last two path components.
    """
    norm = filename.replace("\\", "/")
    idx = norm.rfind("/repro/")
    if idx >= 0:
        return norm[idx + 1 :]
    if norm.startswith("repro/"):
        return norm
    parts = norm.rsplit("/", 2)
    return "/".join(parts[-2:]) if len(parts) > 1 else norm


def frame_label(filename: str, func: str, lineno: int | None) -> str:
    """The canonical ``file:func:line`` frame string used in folded stacks.

    ``lineno`` may be None: a frame walked from another thread can be
    caught mid-construction before it has a line number.
    """
    return f"{_shorten(filename)}:{func}:{int(lineno or 0)}"


def split_frame(label: str) -> tuple[str, str, int]:
    """Inverse of :func:`frame_label` (line defaults to 0 if malformed)."""
    file, _, rest = label.rpartition(":")
    file2, _, func = file.rpartition(":")
    try:
        return file2, func, int(rest)
    except ValueError:
        return file, rest, 0


@dataclass
class SampleProfile:
    """An aggregated sampling profile: folded stacks plus derived tables.

    The only primary data is ``counts`` — ``(span path, frame stack)``
    mapped to the number of samples observed there.  Line, function and
    span tables are recomputed from it on demand, which is what makes
    :meth:`merge` trivially correct and :meth:`to_dict` deterministic.
    """

    interval_s: float = DEFAULT_INTERVAL_S
    n_samples: int = 0
    duration_s: float = 0.0
    overhead_s: float = 0.0
    counts: dict = field(default_factory=dict)  # (span, frames tuple) -> int
    memory: dict | None = None

    # -- recording ---------------------------------------------------------------

    def note(self, span_path: str, frames: tuple, count: int = 1) -> None:
        """Fold one observed stack (root -> leaf frame labels) into the profile."""
        key = (span_path, tuple(frames))
        self.counts[key] = self.counts.get(key, 0) + count
        self.n_samples += count

    def merge(self, other: "SampleProfile", span_prefix: str = "") -> "SampleProfile":
        """Absorb another profile (a worker spool or a sibling shard).

        ``span_prefix`` re-parents the other profile's span paths under
        this process's currently open span — the sampler analogue of
        :meth:`repro.obs.spans.Tracer.graft` — so a worker's
        ``engine.execute/...`` samples merge to the exact span path a
        serial execution would have recorded.
        """
        for (span, frames), count in other.counts.items():
            if span_prefix:
                span = f"{span_prefix}/{span}" if span else span_prefix
            key = (span, frames)
            self.counts[key] = self.counts.get(key, 0) + count
        self.n_samples += other.n_samples
        self.duration_s += other.duration_s
        self.overhead_s += other.overhead_s
        if other.memory:
            if not self.memory:
                self.memory = {"peak_bytes": 0, "top": []}
            self.memory = {
                "peak_bytes": max(self.memory.get("peak_bytes", 0), other.memory.get("peak_bytes", 0)),
                "top": sorted(
                    (self.memory.get("top") or []) + (other.memory.get("top") or []),
                    key=lambda t: (-t["size_bytes"], t["file"], t["line"]),
                )[:10],
            }
        return self

    # -- derived views (all deterministic) ---------------------------------------

    def overhead_ratio(self) -> float:
        """Estimated profiled/unprofiled wall-time ratio (>= 1.0)."""
        useful = self.duration_s - self.overhead_s
        if useful <= 0.0:
            return 1.0
        return self.duration_s / useful

    def span_table(self) -> list:
        """``[{span, samples, seconds}]``, heaviest first (ties: span path)."""
        per_span: dict = {}
        for (span, _frames), count in self.counts.items():
            name = span or ROOT_SPAN
            per_span[name] = per_span.get(name, 0) + count
        return [
            {"span": span, "samples": n, "seconds": n * self.interval_s}
            for span, n in sorted(per_span.items(), key=lambda kv: (-kv[1], kv[0]))
        ]

    def line_table(self) -> list:
        """Per-line profile: self samples (leaf) + per-span attribution.

        Sorted by self samples descending; ties break name-then-path
        (function name, then file, then line) so equal-weight lines
        order identically across runs and processes.
        """
        rows: dict = {}
        for (span, frames), count in self.counts.items():
            if not frames:
                continue
            file, func, line = split_frame(frames[-1])
            row = rows.get((file, func, line))
            if row is None:
                row = rows[(file, func, line)] = {
                    "file": file,
                    "func": func,
                    "line": line,
                    "self": 0,
                    "spans": {},
                }
            row["self"] += count
            span_name = span or ROOT_SPAN
            row["spans"][span_name] = row["spans"].get(span_name, 0) + count
        out = []
        for row in rows.values():
            row["self_seconds"] = row["self"] * self.interval_s
            row["spans"] = dict(sorted(row["spans"].items(), key=lambda kv: (-kv[1], kv[0])))
            out.append(row)
        out.sort(key=lambda r: (-r["self"], r["func"], r["file"], r["line"]))
        return out

    def function_table(self) -> list:
        """Per-function self + cumulative samples (name-then-path ties)."""
        rows: dict = {}
        for (_span, frames), count in self.counts.items():
            if not frames:
                continue
            seen = set()
            for label in frames:
                file, func, _line = split_frame(label)
                seen.add((file, func))
            for file, func in seen:
                row = rows.get((file, func))
                if row is None:
                    row = rows[(file, func)] = {"file": file, "func": func, "self": 0, "cumulative": 0}
                row["cumulative"] += count
            file, func, _line = split_frame(frames[-1])
            rows[(file, func)]["self"] += count
        out = []
        for row in rows.values():
            row["self_seconds"] = row["self"] * self.interval_s
            row["cumulative_seconds"] = row["cumulative"] * self.interval_s
            out.append(row)
        out.sort(key=lambda r: (-r["self"], -r["cumulative"], r["func"], r["file"]))
        return out

    def folded(self) -> list:
        """Collapsed-stack flamegraph lines: ``span;frame;frame count``.

        Feed straight to ``flamegraph.pl`` / speedscope / inferno.  The
        span path leads the stack so the flamegraph's first levels are
        the engine phases.  Lexicographically sorted — byte-stable for
        a given set of counts.
        """
        lines = []
        for (span, frames), count in self.counts.items():
            head = (span or ROOT_SPAN).replace(_FOLD_SEP, ",")
            stack = _FOLD_SEP.join((head,) + tuple(frames))
            lines.append(f"{stack} {count}")
        lines.sort()
        return lines

    def frame_set(self) -> set:
        """All ``(file, func)`` pairs observed anywhere — the structural
        fingerprint the serial ≡ parallel property test compares."""
        out = set()
        for (_span, frames), _count in self.counts.items():
            for label in frames:
                file, func, _line = split_frame(label)
                out.add((file, func))
        return out

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> dict:
        """Deterministic JSON-able form (sorted folded entries + tables)."""
        folded = [
            {"span": span, "stack": list(frames), "count": count}
            for (span, frames), count in sorted(
                self.counts.items(), key=lambda kv: (kv[0][0], kv[0][1])
            )
        ]
        return {
            "interval_s": self.interval_s,
            "n_samples": self.n_samples,
            "duration_s": self.duration_s,
            "overhead_s": self.overhead_s,
            "overhead_ratio": self.overhead_ratio(),
            "folded": folded,
            "spans": self.span_table(),
            "functions": self.function_table(),
            "lines": self.line_table(),
            "memory": self.memory,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SampleProfile":
        """Rebuild from :meth:`to_dict` output (tables are re-derived)."""
        profile = cls(
            interval_s=float(data.get("interval_s", DEFAULT_INTERVAL_S)),
            duration_s=float(data.get("duration_s", 0.0)),
            overhead_s=float(data.get("overhead_s", 0.0)),
            memory=data.get("memory"),
        )
        for entry in data.get("folded", ()):
            profile.note(entry.get("span", ""), tuple(entry.get("stack", ())), int(entry["count"]))
        return profile


class Sampler:
    """The live profiler: a watcher thread folding stacks into a profile.

    Usage::

        s = Sampler(interval_s=0.005)
        s.start()          # samples the *calling* thread from here on
        ... hot work ...
        profile = s.stop()

    ``all_threads=True`` samples every thread in the process except the
    watcher itself (the service's ``/v1/profile`` endpoint uses this —
    the handler thread is just sleeping, the interesting work is on the
    executor threads).  While started, the sampler is registered as the
    process-wide :func:`active_sampler`, which is how the engine knows
    to have pool workers sample themselves.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        clock: Callable[[], float] = time.perf_counter,
        memory: bool = False,
        all_threads: bool = False,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.interval_s = interval_s
        self.profile = SampleProfile(interval_s=interval_s)
        self._clock = clock
        self._memory = memory
        self._all_threads = all_threads
        self._stop_event = threading.Event()
        self._pause_event = threading.Event()
        self._stopping = False
        self._watcher: threading.Thread | None = None
        self._target_ident: int | None = None
        self._segment_t0 = 0.0
        self._started_tracemalloc = False
        self._previous: "Sampler | None" = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "Sampler":
        """Begin sampling the calling thread; register process-wide."""
        global _active
        if self._watcher is not None:
            return self
        self._target_ident = threading.get_ident()
        if self._memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
        self._segment_t0 = self._clock()
        self._stopping = False
        self._stop_event.clear()
        self._watcher = threading.Thread(
            target=self._watch, name="scaltool-sampler", daemon=True
        )
        # Bound the watcher's GIL wait to a small fraction of the tick
        # period, or GIL-releasing C calls dominate where samples land
        # (see module docstring); restored by the matching stop().  The
        # cost is one extra forced handoff per tick, not per bytecode,
        # so a tight bound is near-free.
        _shrink_switch_interval(max(5e-5, self.interval_s / 50.0))
        self._previous = _active
        _active = self
        self._watcher.start()
        return self

    def stop(self) -> SampleProfile:
        """Stop the watcher, unregister, and return the finished profile."""
        global _active
        if self._watcher is None:
            return self.profile
        # Flag first: an in-flight tick re-checks it before recording, so
        # the caller blocked in join() below is never captured as a
        # phantom hot frame (it shows up once per run otherwise).
        self._stopping = True
        self._stop_event.set()
        self._watcher.join(timeout=5.0)
        self._watcher = None
        _restore_switch_interval()
        if not self._pause_event.is_set():
            self.profile.duration_s += self._clock() - self._segment_t0
        if _active is self:
            _active = self._previous
        self._previous = None
        if self._memory:
            self._collect_memory()
        return self.profile

    def pause(self) -> None:
        """Suspend sampling (the engine pauses the parent while a parallel
        batch runs — workers sample themselves and spool it back)."""
        if not self._pause_event.is_set():
            self._pause_event.set()
            self.profile.duration_s += self._clock() - self._segment_t0

    def resume(self) -> None:
        if self._pause_event.is_set():
            self._segment_t0 = self._clock()
            self._pause_event.clear()

    # -- sampling ----------------------------------------------------------------

    def sample_once(self) -> None:
        """Take exactly one sample now (the watcher's tick; callable from
        tests for deterministic coverage)."""
        t0 = self._clock()
        try:
            frames = sys._current_frames()
            watcher_ident = (
                self._watcher.ident if self._watcher is not None else None
            )
            span_path = self._span_path()
            if self._all_threads:
                targets = [
                    frame
                    for ident, frame in sorted(frames.items())
                    if ident != watcher_ident and ident != threading.get_ident()
                ]
            else:
                frame = frames.get(self._target_ident)
                targets = [frame] if frame is not None else []
            for frame in targets:
                stack = self._extract(frame)
                # Re-check the flags at note time: a tick that raced a
                # concurrent stop()/pause() drops its sample instead of
                # recording the stopping code path itself.
                if stack and not self._stopping and not self._pause_event.is_set():
                    self.profile.note(span_path, stack)
        finally:
            self.profile.overhead_s += self._clock() - t0

    def _watch(self) -> None:
        tick = 0
        while not self._stop_event.wait(
            self.interval_s * _TICK_JITTER[tick % len(_TICK_JITTER)]
        ):
            tick += 1
            if self._pause_event.is_set():
                continue
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - defensive
                # One bad tick (a frame torn down mid-walk) must not kill
                # the watcher and silently truncate the profile window.
                _log.warning("sampler tick failed", exc_info=True)

    def _span_path(self) -> str:
        """The ambient span path: top of the active session's span stack."""
        from . import runtime as obs

        stack = getattr(obs.tracer(), "_stack", None)
        if stack:
            return stack[-1].path
        return ""

    def _extract(self, frame) -> tuple:
        """Frame labels root -> leaf, sampler internals excluded."""
        labels = []
        own = __file__
        while frame is not None and len(labels) < STACK_DEPTH_LIMIT:
            code = frame.f_code
            if code.co_filename != own:
                labels.append(
                    frame_label(
                        code.co_filename,
                        code.co_name,
                        frame.f_lineno or code.co_firstlineno,
                    )
                )
            frame = frame.f_back
        labels.reverse()
        return tuple(labels)

    def _collect_memory(self) -> None:
        import tracemalloc

        if not tracemalloc.is_tracing():
            return
        _current, peak = tracemalloc.get_traced_memory()
        top = []
        for stat in tracemalloc.take_snapshot().statistics("lineno")[:10]:
            fr = stat.traceback[0]
            top.append(
                {
                    "file": _shorten(fr.filename),
                    "line": fr.lineno,
                    "size_bytes": stat.size,
                }
            )
        top.sort(key=lambda t: (-t["size_bytes"], t["file"], t["line"]))
        self.profile.memory = {"peak_bytes": peak, "top": top}
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False


class NoopSampler:
    """The disabled sampler: every method is a no-op; a shared singleton."""

    __slots__ = ()

    interval_s = DEFAULT_INTERVAL_S
    profile = None

    def start(self) -> "NoopSampler":
        return self

    def stop(self) -> None:
        return None

    def pause(self) -> None:
        return None

    def resume(self) -> None:
        return None

    def sample_once(self) -> None:
        return None


NOOP_SAMPLER = NoopSampler()

_active: Sampler | None = None


def active_sampler() -> Sampler | None:
    """The currently started sampler, or None (one global read)."""
    return _active


def sampler():
    """The active sampler or the no-op singleton (mirrors ``obs.tracer()``)."""
    s = _active
    return s if s is not None else NOOP_SAMPLER
