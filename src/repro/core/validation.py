"""Model validation against speedshop (Figures 7, 10, 13).

The paper's only feasible independent check: speedshop PC sampling can
measure the *total* MP = Sync + Imb cost (it cannot separate the two, nor
see L2Lim).  We compare

* Scal-Tool's estimated ``Base − MP`` curve against
* ``Base − MP_speedshop`` built from the profiled runs,

and report the divergence as a percentage of the accumulated base cycles
— the paper's metric ("the predicted and the measured Base-MP curves
differ by 9% / 14% of the accumulated cycles of all processors").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ValidationError
from ..runner.campaign import CampaignData
from ..runner.engine import Executor, SerialExecutor
from ..tools.speedshop import profile_record
from .scaltool import ScalToolAnalysis

__all__ = ["ValidationComparison", "validate_mp"]


def _profile_apply(item):
    """Executor task body (module-level so parallel maps can pickle it)."""
    record, sampling_period, seed, exact = item
    return profile_record(record, sampling_period=sampling_period, seed=seed, exact=exact)


@dataclass
class ValidationComparison:
    """Estimated vs measured MP cost per processor count."""

    workload: str
    processor_counts: list[int]
    base: dict[int, float] = field(default_factory=dict)
    estimated_mp: dict[int, float] = field(default_factory=dict)
    measured_mp: dict[int, float] = field(default_factory=dict)

    def estimated_base_minus_mp(self, n: int) -> float:
        return self.base[n] - self.estimated_mp[n]

    def measured_base_minus_mp(self, n: int) -> float:
        return self.base[n] - self.measured_mp[n]

    def divergence(self, n: int) -> float:
        """|estimated − measured| MP as a fraction of the base cycles."""
        return abs(self.estimated_mp[n] - self.measured_mp[n]) / self.base[n]

    def max_divergence(self) -> tuple[int, float]:
        worst = max(self.processor_counts, key=self.divergence)
        return worst, self.divergence(worst)

    def rows(self) -> list[dict]:
        out = []
        for n in self.processor_counts:
            out.append(
                {
                    "n": n,
                    "base": self.base[n],
                    "est Base-MP": self.estimated_base_minus_mp(n),
                    "meas Base-MP": self.measured_base_minus_mp(n),
                    "divergence": self.divergence(n),
                }
            )
        return out

    def summary(self) -> str:
        lines = [f"MP validation for {self.workload}:"]
        for row in self.rows():
            lines.append(
                f"  n={row['n']:3d}: base={row['base']:14,.0f}  "
                f"est(Base-MP)={row['est Base-MP']:14,.0f}  "
                f"meas(Base-MP)={row['meas Base-MP']:14,.0f}  "
                f"divergence={row['divergence']:6.1%}"
            )
        n, d = self.max_divergence()
        lines.append(f"  worst divergence: {d:.1%} at n={n}")
        return "\n".join(lines)


def validate_mp(
    analysis: ScalToolAnalysis,
    campaign: CampaignData,
    sampling_period: int = 10000,
    exact: bool = False,
    executor: Executor | None = None,
) -> ValidationComparison:
    """Compare the analysis's MP estimate to speedshop measurements.

    The campaign must have kept ground truth on its base runs (the default);
    this is the validation side, so using it is legitimate — it stands in
    for re-running the application under the profiler.  The per-count
    profiling passes run through the shared executor (each keeps its
    ``seed=n``, so the sampled profile is identical under any executor).
    """
    base_runs = campaign.base_runs()
    if not base_runs:
        raise ValidationError("campaign has no base runs to validate against")
    counts = sorted(set(base_runs) & set(analysis.curves.base))
    if not counts:
        raise ValidationError("no overlapping processor counts between analysis and campaign")

    executor = executor or SerialExecutor()
    profiles = executor.map(
        _profile_apply, [(base_runs[n], sampling_period, n, exact) for n in counts]
    )
    cmp = ValidationComparison(workload=analysis.workload, processor_counts=counts)
    for n, profile in zip(counts, profiles):
        cmp.base[n] = analysis.curves.base[n]
        cmp.estimated_mp[n] = analysis.curves.mp_cost(n)
        cmp.measured_mp[n] = profile.mp_cycles
    return cmp
