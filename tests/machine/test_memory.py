"""NUMA memory: allocation, coloring, and home placement."""

import pytest

from repro.errors import ConfigError
from repro.machine.config import MemoryConfig
from repro.machine.memory import Allocator, NumaMemory, Region


def make_memory(n_nodes=4, placement="first_touch", page=128, line=32):
    return NumaMemory(MemoryConfig(page_size=page, placement=placement), n_nodes, line)


class TestRegion:
    def test_ranges(self):
        r = Region("a", base_block=8, n_blocks=16)
        assert r.end_block == 24
        assert list(r.block_range())[:3] == [8, 9, 10]

    def test_slice_for_partitions_everything(self):
        r = Region("a", 0, 100)
        parts = [r.slice_for(i, 3) for i in range(3)]
        covered = sorted(b for p in parts for b in p)
        assert covered == list(range(100))

    def test_slice_last_takes_remainder(self):
        r = Region("a", 0, 10)
        assert len(r.slice_for(2, 3)) == 4  # 3 + 3 + 4

    def test_slice_bad_part(self):
        with pytest.raises(ConfigError):
            Region("a", 0, 10).slice_for(3, 3)


class TestAllocator:
    def test_page_alignment(self):
        a = Allocator(blocks_per_page=4, color=False)
        r1 = a.alloc("x", 3)
        r2 = a.alloc("y", 5)
        assert r1.base_block == 0
        assert r2.base_block % 4 == 0
        assert r2.base_block >= r1.end_block

    def test_no_overlap_with_coloring(self):
        a = Allocator(blocks_per_page=4, color=True)
        regions = [a.alloc(name, 10) for name in "abcdef"]
        spans = sorted((r.base_block, r.end_block) for r in regions)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_coloring_varies_base_offsets(self):
        a = Allocator(blocks_per_page=4, color=True)
        offsets = {a.alloc(name, 4).base_block % (61 * 4) for name in "abcdefgh"}
        assert len(offsets) > 1  # different names land on different colors

    def test_duplicate_name_rejected(self):
        a = Allocator(4)
        a.alloc("x", 4)
        with pytest.raises(ConfigError):
            a.alloc("x", 4)

    def test_zero_blocks_rejected(self):
        with pytest.raises(ConfigError):
            Allocator(4).alloc("x", 0)

    def test_region_lookup(self):
        a = Allocator(4)
        r = a.alloc("data", 8)
        assert a.region("data") is r
        with pytest.raises(ConfigError):
            a.region("nope")

    def test_regions_listing(self):
        a = Allocator(4)
        a.alloc("x", 4)
        a.alloc("y", 4)
        assert [r.name for r in a.regions()] == ["x", "y"]


class TestPlacement:
    def test_first_touch_assigns_to_toucher(self):
        m = make_memory(placement="first_touch")
        assert m.home_of(0, toucher=3) == 3
        # second touch by someone else does not move it
        assert m.home_of(0, toucher=1) == 3

    def test_first_touch_per_page(self):
        m = make_memory(placement="first_touch", page=128, line=32)  # 4 blocks/page
        m.home_of(0, 2)
        assert m.home_of(3, 0) == 2  # same page
        assert m.home_of(4, 0) == 0  # next page

    def test_round_robin(self):
        m = make_memory(n_nodes=4, placement="round_robin", page=128, line=32)
        homes = [m.home_of(page * 4, 0) for page in range(8)]
        assert homes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_block_placement_splits_region(self):
        m = make_memory(n_nodes=2, placement="block", page=128, line=32)
        region = m.allocator.alloc("grid", 32)  # 8 pages
        first = m.home_of(region.base_block, 0)
        last = m.home_of(region.end_block - 1, 0)
        assert first == 0 and last == 1

    def test_block_placement_outside_region_round_robins(self):
        m = make_memory(n_nodes=4, placement="block")
        assert m.home_of(10_000, 0) == (10_000 // 4) % 4

    def test_home_histogram(self):
        m = make_memory(n_nodes=2, placement="round_robin", page=128, line=32)
        for page in range(6):
            m.home_of(page * 4, 0)
        assert m.home_histogram() == [3, 3]

    def test_reset_homes(self):
        m = make_memory()
        m.home_of(0, 1)
        m.reset_homes()
        assert m.home_of(0, 2) == 2

    def test_page_smaller_than_line_rejected(self):
        with pytest.raises(ConfigError):
            NumaMemory(MemoryConfig(page_size=128), n_nodes=2, line_size=256)
