"""TLB model and the MSI protocol option."""

import pytest

from repro.errors import ConfigError
from repro.machine.config import MachineConfig
from repro.machine.system import DsmMachine

from ..conftest import small_synthetic, tiny_machine_config


class TestTlb:
    def test_disabled_by_default(self, machine):
        res = machine.run(small_synthetic(), 16 * 1024)
        assert res.counters.tlb_misses == 0
        assert res.ground_truth.tlb_stall_cycles == 0

    def test_enabled_counts_misses(self):
        cfg = tiny_machine_config(tlb_entries=4)
        res = DsmMachine(cfg).run(small_synthetic(), 16 * 1024)
        assert res.counters.tlb_misses > 0
        assert res.ground_truth.tlb_stall_cycles == pytest.approx(
            res.counters.tlb_misses * cfg.timing.t_tlb_miss
        )

    def test_ledger_still_reconciles(self):
        cfg = tiny_machine_config(tlb_entries=4)
        res = DsmMachine(cfg).run(small_synthetic(), 16 * 1024)
        assert res.ground_truth.total_cycles == pytest.approx(res.counters.cycles, rel=1e-9)

    def test_larger_tlb_fewer_misses(self):
        small = DsmMachine(tiny_machine_config(tlb_entries=2)).run(small_synthetic(), 16 * 1024)
        large = DsmMachine(tiny_machine_config(tlb_entries=64)).run(small_synthetic(), 16 * 1024)
        assert large.counters.tlb_misses < small.counters.tlb_misses

    def test_huge_tlb_only_cold_misses(self):
        cfg = tiny_machine_config(tlb_entries=10_000)
        res = DsmMachine(cfg).run(small_synthetic(), 16 * 1024)
        pages_touched = len(DsmMachine(cfg).memory.assigned_pages())  # fresh = 0; use result
        # every page is missed at most once per cpu
        machine = DsmMachine(cfg)
        res = machine.run(small_synthetic(), 16 * 1024)
        assert res.counters.tlb_misses <= 4 * len(machine.memory.assigned_pages())

    def test_negative_entries_rejected(self):
        with pytest.raises(ConfigError):
            tiny_machine_config(tlb_entries=-1)

    def test_event_23_in_reports(self):
        from repro.tools.perfex import format_report, parse_report

        cfg = tiny_machine_config(tlb_entries=4)
        res = DsmMachine(cfg).run(small_synthetic(), 16 * 1024)
        _, totals, _ = parse_report(format_report(res.counters))
        assert totals.tlb_misses == pytest.approx(res.counters.tlb_misses, abs=1.0)


class TestMsiProtocol:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigError):
            tiny_machine_config(protocol="moesi")

    def test_msi_never_installs_exclusive(self):
        from repro.machine.cache import EXCLUSIVE

        machine = DsmMachine(tiny_machine_config(protocol="msi"))
        machine.run(small_synthetic(), 16 * 1024)
        for hier in machine.hierarchies:
            for block in hier.l2.resident_blocks():
                assert hier.l2.state_of(block) != EXCLUSIVE

    @staticmethod
    def _read_then_write(protocol):
        """Private read-modify-write traffic: where the E state pays off."""
        from repro.machine.coherence import CoherenceController
        from repro.machine.counters import CounterSet, GroundTruth
        from repro.machine.hierarchy import CacheHierarchy
        from repro.machine.interconnect import Interconnect
        from repro.machine.memory import NumaMemory

        cfg = tiny_machine_config(n_processors=2, protocol=protocol)
        hier = [CacheHierarchy(i, cfg.l1, cfg.l2, seed=1) for i in range(2)]
        counters = [CounterSet() for _ in range(2)]
        gt = [GroundTruth() for _ in range(2)]
        ctrl = CoherenceController(
            cfg, hier, NumaMemory(cfg.memory, 2, cfg.line_size),
            Interconnect(cfg.interconnect, 2), counters, gt,
        )
        stall = 0.0
        for block in range(32):
            stall += ctrl.access(0, block, False)  # read installs the line
            stall += ctrl.access(0, block, True)   # then x[i] += 1
        return counters[0], stall

    def test_msi_inflates_event31(self):
        # under MESI the sole reader gets Exclusive and the store is silent;
        # under MSI the read installs Shared and every store is an upgrade
        mesi, _ = self._read_then_write("mesi")
        msi, _ = self._read_then_write("msi")
        assert mesi.store_exclusive_to_shared == 0
        assert msi.store_exclusive_to_shared == 32

    def test_msi_slower_than_mesi(self):
        _, mesi_stall = self._read_then_write("mesi")
        _, msi_stall = self._read_then_write("msi")
        assert msi_stall > mesi_stall

    def test_msi_invariants_hold(self):
        machine = DsmMachine(tiny_machine_config(protocol="msi"))
        machine.run(small_synthetic(iters=2), 16 * 1024)
        machine.controller.check_invariants()
