"""Extrapolate a fitted model suite beyond the measured machine.

Given a speedup curve (and optionally a Scal-Tool analysis), this module
answers the capacity-planning questions the individual fits only imply:

* **peak count n\\*** — where each model says speedup tops out, and the
  speedup it predicts there;
* **payback zone** — the largest measured-or-predicted count up to which
  *doubling* the machine still buys at least :data:`PAYBACK_GAIN`
  (default 10%) more speedup.  Past the payback edge more processors
  still help, but not enough to pay for themselves; past n\\* they
  actively hurt;
* **predicted speedups** at counts beyond the measured range, with the
  USL/granularity seeded-bootstrap CI bands so an extrapolated number
  never travels without its uncertainty.
"""

from __future__ import annotations

from ..errors import EstimationError
from ..obs import runtime as obs
from .base import ModelFit, normalized_speedups
from .compare import fit_all
from .dataset import SpeedupDataset

__all__ = ["PREDICT_SCHEMA", "PAYBACK_GAIN", "payback_edge", "predict_report"]

PREDICT_SCHEMA = "scaltool-models-predict-v1"

#: Minimum speedup gain a doubling must deliver to stay in the payback zone.
PAYBACK_GAIN = 1.10

#: How far past the largest requested count the payback scan looks.
_PAYBACK_HORIZON = 4096


def payback_edge(fit: ModelFit, start: int = 1) -> int:
    """Largest n (power-of-two scan) where S(2n) >= PAYBACK_GAIN * S(n)."""
    edge = start
    n = start
    while n * 2 <= _PAYBACK_HORIZON:
        s_now = fit.predict(float(n))
        s_next = fit.predict(float(n * 2))
        if s_now <= 0 or s_next < PAYBACK_GAIN * s_now:
            break
        edge = n * 2
        n *= 2
    return edge


def _row_entry(fit: ModelFit, n: int) -> dict:
    entry: dict = {"speedup": float(fit.predict(float(n)))}
    band = fit.band(float(n)) if fit.band is not None else None
    if band is not None:
        entry["ci"] = [float(band[0]), float(band[1])]
    return entry


def predict_report(
    dataset: SpeedupDataset, to_counts: list[int], analysis=None
) -> dict:
    """Measured + extrapolated speedups for every model, with CI bands.

    ``to_counts`` are the extra processor counts to project to (beyond or
    between the measured ones); the report always includes the measured
    counts so the curve reads as one table.
    """
    bad = [n for n in to_counts if n < 1]
    if bad:
        raise EstimationError(
            "prediction counts must be >= 1", inputs={"counts": bad}
        )
    with obs.tracer().span(
        "models.predict",
        label=dataset.label,
        points=len(dataset.points),
        targets=len(to_counts),
    ):
        fits = fit_all(dataset, analysis)
        measured = dict(zip(dataset.counts, normalized_speedups(dataset)))
        counts = sorted(set(dataset.counts) | {int(n) for n in to_counts})
        rows = []
        for n in counts:
            row: dict = {"n": int(n), "measured": measured.get(n)}
            if row["measured"] is not None:
                row["measured"] = float(row["measured"])
            row["models"] = {
                name: _row_entry(fit, n) for name, fit in sorted(fits.items())
            }
            rows.append(row)
        summary = {}
        for name, fit in sorted(fits.items()):
            summary[name] = {
                "peak_n": None if fit.peak_n is None else float(fit.peak_n),
                "peak_speedup": (
                    None if fit.peak_speedup is None else float(fit.peak_speedup)
                ),
                "payback_edge": int(payback_edge(fit)),
                "grade": fit.grade,
            }
        obs.registry().inc("models.predict")
        return {
            "schema": PREDICT_SCHEMA,
            "label": dataset.label,
            "source": dataset.source,
            "measured_counts": [int(n) for n in dataset.counts],
            "rows": rows,
            "models": {name: fit.to_dict() for name, fit in sorted(fits.items())},
            "summary": summary,
            "payback_gain": PAYBACK_GAIN,
        }
