"""The run engine: spec identity, caching, executors, retry, equivalence."""

from __future__ import annotations

import functools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, TransientRunError
from repro.machine.config import CacheConfig
from repro.obs import runtime as obs
from repro.runner.engine import (
    ParallelExecutor,
    RunCache,
    RunSpec,
    SerialExecutor,
    default_executor,
    execute_spec,
)
from repro.workloads.synthetic import SyntheticWorkload

from ..conftest import small_synthetic, tiny_machine_config


def spec_for(n: int = 2, size: int = 4 * 1024, **wl_params) -> RunSpec:
    return RunSpec.compile(
        small_synthetic(**wl_params), size, n, machine=tiny_machine_config(n_processors=n)
    )


# -- RunSpec identity -----------------------------------------------------------------


class TestRunSpecKey:
    def test_same_inputs_same_key(self):
        assert spec_for().key() == spec_for().key()

    def test_key_varies_with_workload_params(self):
        assert spec_for(iters=2).key() != spec_for(iters=3).key()

    def test_key_varies_with_size_and_n(self):
        base = spec_for()
        assert base.key() != spec_for(size=8 * 1024).key()
        assert base.key() != spec_for(n=4).key()

    def test_key_sees_n_dependent_machine_config(self):
        """Satellite-1 regression: two machine families that agree at n=1
        but diverge at larger counts must produce different keys at those
        counts (the old campaign cache summarised ``factory(1)`` only)."""

        def factory_a(n):
            return tiny_machine_config(n_processors=n)

        def factory_b(n):
            l2 = CacheConfig(size=4096 if n == 1 else 8192, line_size=32,
                             associativity=2, name="L2")
            return tiny_machine_config(n_processors=n, l2=l2)

        wl = small_synthetic()
        at1_a = RunSpec.compile(wl, 4096, 1, machine=factory_a(1))
        at1_b = RunSpec.compile(wl, 4096, 1, machine=factory_b(1))
        assert at1_a.key() == at1_b.key()  # identical configs at n=1
        at4_a = RunSpec.compile(wl, 4096, 4, machine=factory_a(4))
        at4_b = RunSpec.compile(wl, 4096, 4, machine=factory_b(4))
        assert at4_a.key() != at4_b.key()

    def test_ident_is_json_round_trippable(self):
        ident = spec_for().ident()
        assert json.loads(json.dumps(ident, sort_keys=True)) == ident

    def test_compile_round_trips_workload(self):
        spec = spec_for(iters=3, seed=23)
        rebuilt = spec.build_workload()
        assert rebuilt.describe_params() == small_synthetic(iters=3, seed=23).describe_params()
        assert rebuilt.seed == 23

    def test_compile_rejects_unreconstructable_workload(self):
        class Lossy(SyntheticWorkload):
            def describe_params(self):
                return {"iters": self.iters}  # drops everything else

        with pytest.raises(ConfigError, match="round-trip"):
            RunSpec.compile(Lossy(), 4096, 2, machine=tiny_machine_config(n_processors=2))


# -- executors: equivalence and ordering ----------------------------------------------


def _double(x: int) -> int:  # module-level: parallel map must pickle it
    return 2 * x


class TestExecutors:
    def test_map_preserves_order(self):
        items = list(range(7))
        assert SerialExecutor().map(_double, items) == [2 * x for x in items]
        assert ParallelExecutor(jobs=2).map(_double, items) == [2 * x for x in items]

    def test_default_executor_selection(self):
        assert isinstance(default_executor(1), SerialExecutor)
        assert isinstance(default_executor(0), SerialExecutor)
        parallel = default_executor(3)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.jobs == 3

    def test_serial_and_parallel_records_byte_identical(self):
        specs = [spec_for(n=n, size=size) for n in (1, 2) for size in (2048, 4096)]
        serial = SerialExecutor().run(specs)
        parallel = ParallelExecutor(jobs=2).run(specs)
        assert [r.to_json() for r in serial] == [r.to_json() for r in parallel]

    @settings(max_examples=5, deadline=None)
    @given(
        iters=st.integers(min_value=1, max_value=3),
        barriers=st.integers(min_value=1, max_value=2),
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.sampled_from([1, 2]),
        size=st.sampled_from([2048, 4096, 8192]),
    )
    def test_serial_parallel_equivalence_property(self, iters, barriers, seed, n, size):
        """Acceptance: the parallel JSONL is byte-identical to the serial one."""
        spec = RunSpec.compile(
            small_synthetic(iters=iters, barriers_per_iter=barriers, seed=seed),
            size,
            n,
            machine=tiny_machine_config(n_processors=n),
        )
        serial = SerialExecutor().run([spec, spec_for()])
        parallel = ParallelExecutor(jobs=2).run([spec, spec_for()])
        assert "\n".join(r.to_json() for r in serial) == "\n".join(
            r.to_json() for r in parallel
        )

    def test_outcomes_fire_in_spec_order_serially(self):
        specs = [spec_for(n=1), spec_for(n=2)]
        seen = []
        SerialExecutor().run(specs, on_outcome=lambda o: seen.append(o))
        assert [o.index for o in seen] == [0, 1]
        assert all(o.total == 2 and not o.cached and o.attempts == 1 for o in seen)


# -- retry ----------------------------------------------------------------------------


def _flaky_execute(counter_path: str, spec: RunSpec):
    """Fails transiently on first attempt per spec; counts attempts in a file
    (module-level + file-based so pool workers can share the state)."""
    from pathlib import Path

    marker = Path(counter_path) / f"{spec.key()}.attempt"
    attempts = int(marker.read_text()) if marker.exists() else 0
    marker.write_text(str(attempts + 1))
    if attempts == 0:
        raise TransientRunError(f"injected failure for {spec.describe()}")
    return execute_spec(spec)


class TestRetry:
    def test_serial_retries_transient_then_succeeds(self):
        spec = spec_for()
        calls = {"n": 0}

        def flaky(s):
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientRunError("flaky")
            return execute_spec(s)

        outcomes = []
        with obs.session() as s:
            records = SerialExecutor(retries=2, execute_fn=flaky).run(
                [spec], on_outcome=lambda o: outcomes.append(o)
            )
        assert calls["n"] == 3
        assert records[0].to_json() == execute_spec(spec).to_json()
        assert outcomes[0].attempts == 3
        assert s.registry.counter("engine.retries") == 2.0

    def test_serial_raises_when_retries_exhausted(self):
        def always_fails(s):
            raise TransientRunError("still broken")

        with pytest.raises(TransientRunError, match="still broken"):
            SerialExecutor(retries=1, execute_fn=always_fails).run([spec_for()])

    def test_serial_does_not_retry_nontransient(self):
        calls = {"n": 0}

        def broken(s):
            calls["n"] += 1
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            SerialExecutor(retries=2, execute_fn=broken).run([spec_for()])
        assert calls["n"] == 1

    def test_parallel_resubmits_transient_failure(self, tmp_path):
        specs = [spec_for(n=1), spec_for(n=2)]
        flaky = functools.partial(_flaky_execute, str(tmp_path))
        outcomes = []
        records = ParallelExecutor(jobs=2, retries=2, execute_fn=flaky).run(
            specs, on_outcome=lambda o: outcomes.append(o)
        )
        expected = SerialExecutor().run(specs)
        assert [r.to_json() for r in records] == [r.to_json() for r in expected]
        assert sorted(o.attempts for o in outcomes) == [2, 2]


# -- caching --------------------------------------------------------------------------


class TestRunCache:
    def test_second_run_is_all_hits(self, tmp_path):
        specs = [spec_for(n=1), spec_for(n=2)]
        cache = RunCache(tmp_path)
        with obs.session() as s1:
            first = SerialExecutor().run(specs, cache=cache)
        assert s1.registry.counter("engine.cache.miss") == 2.0
        assert s1.registry.counter("engine.runs") == 2.0

        outcomes = []
        with obs.session() as s2:
            second = SerialExecutor().run(
                specs, cache=cache, on_outcome=lambda o: outcomes.append(o)
            )
        assert s2.registry.counter("engine.cache.hit") == 2.0
        assert s2.registry.counter("engine.runs") == 0.0
        assert [r.to_json() for r in first] == [r.to_json() for r in second]
        # Hits still produce outcome events (warm progress, satellite 3).
        assert [(o.index, o.cached, o.attempts) for o in outcomes] == [
            (0, True, 0),
            (1, True, 0),
        ]

    def test_refresh_bypasses_reads_but_rewrites(self, tmp_path):
        spec = spec_for()
        cache = RunCache(tmp_path)
        SerialExecutor().run([spec], cache=cache)
        before = cache.path(spec).read_text()
        with obs.session() as s:
            SerialExecutor().run([spec], cache=cache, refresh=True)
        assert s.registry.counter("engine.runs") == 1.0
        assert s.registry.counter("engine.cache.hit") == 0.0
        assert cache.path(spec).read_text() == before  # deterministic rewrite

    def test_corrupt_entry_reruns(self, tmp_path):
        spec = spec_for()
        cache = RunCache(tmp_path)
        first = SerialExecutor().run([spec], cache=cache)
        cache.path(spec).write_text("{ nope")
        with obs.session() as s:
            again = SerialExecutor().run([spec], cache=cache)
        assert s.registry.counter("engine.cache.corrupt") == 1.0
        assert s.registry.counter("engine.runs") == 1.0
        assert again[0].to_json() == first[0].to_json()

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        specs = [spec_for(n=1), spec_for(n=2)]
        cache = RunCache(tmp_path)
        SerialExecutor().run(specs, cache=cache)
        with obs.session() as s:
            records = ParallelExecutor(jobs=2).run(specs, cache=cache)
        assert s.registry.counter("engine.cache.hit") == 2.0
        assert s.registry.counter("engine.runs") == 0.0
        assert [r.to_json() for r in records] == [
            r.to_json() for r in SerialExecutor().run(specs)
        ]


# -- engine spans ---------------------------------------------------------------------


class TestEngineObs:
    def test_engine_run_span_attrs(self, tmp_path):
        specs = [spec_for(n=1), spec_for(n=2)]
        with obs.session() as s:
            SerialExecutor().run(specs, cache=RunCache(tmp_path))
        (span,) = s.tracer.by_name("engine.run")
        assert span.attrs["runs"] == 2
        assert span.attrs["executor"] == "SerialExecutor"
        assert span.attrs["cache_hits"] == 0
        assert len(s.tracer.by_name("engine.execute")) == 2
        assert s.registry.histogram("engine.run_seconds").count == 2

    def test_engine_map_span(self):
        with obs.session() as s:
            SerialExecutor().map(_double, [1, 2, 3])
        (span,) = s.tracer.by_name("engine.map")
        assert span.attrs["tasks"] == 3


# -- the benchmark smoke run (satellite: wired into every tier-1 pass) ---------------


def test_parallel_benchmark_smoke(tmp_path):
    from benchmarks.bench_parallel_campaign import run_benchmark

    result = run_benchmark(s0=8 * 1024, counts=(1, 2), jobs=1, results_dir=tmp_path)
    assert result["identical_records"]
    assert result["runs"] > 0
    assert (tmp_path / "parallel_campaign.json").exists()
    assert (tmp_path / "parallel_campaign.txt").exists()
