"""Figure 4: cpi_infinf(s0, n) grows with the processor count.

"One major reason is because cpi(inf,inf) depends on tm(n), which itself
increases with n. Intuitively, the larger machine size induces a longer
latency on each of the compulsory misses."
"""

import pytest

from repro.core.bottlenecks import cpi_infinf_by_n
from repro.viz.ascii_chart import ascii_chart
from repro.viz.tables import format_table


def test_fig4_cpi_infinf_grows(benchmark, emit, t3dheat_analysis, t3dheat_campaign):
    analysis = t3dheat_analysis
    base_runs = {
        n: r.without_ground_truth() for n, r in t3dheat_campaign.base_runs().items()
    }

    def series():
        return cpi_infinf_by_n(base_runs, analysis.params, analysis.cache)

    cpi = benchmark(series)
    counts = sorted(cpi)
    chart = ascii_chart(
        {"cpi_infinf(s0,n)": [(n, cpi[n]) for n in counts]},
        title="Figure 4: CPI with caching space and MP factors removed",
        y_label="cpi",
    )
    rows = [{"n": n, "cpi_infinf": cpi[n], "tm(n)": analysis.params.tm(n)} for n in counts]
    emit("fig4_cpi_infinf", chart + "\n\n" + format_table(rows))

    # the curve rises with n, driven by tm(n)
    assert cpi[counts[-1]] > cpi[counts[0]]
    assert analysis.params.tm(counts[-1]) > analysis.params.tm(counts[0])
    # and never drops below the compute CPI
    for n in counts:
        assert cpi[n] >= analysis.params.cpi0 - 1e-9
