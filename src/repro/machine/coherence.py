"""Directory MESI coherence controller and per-access timing.

This is the protocol engine: every data reference of every processor flows
through :meth:`CoherenceController.access`, which

1. probes the node's L1 (presence) and L2 (MESI state),
2. on an L2 miss, consults the home node's directory, performs remote
   interventions/invalidations, classifies the miss (cold / coherence /
   replacement) against the node's ground-truth sets, and fills both levels,
3. on a store to a SHARED line, performs the upgrade (invalidate other
   sharers) and bumps the R10000 event-31 counter
   ("store/prefetch exclusive to shared block") — the counter the paper
   repurposes as ``ntsyn``,
4. returns the stall cycles beyond the workload's cpi0 and records them in
   the hardware counters and the ground-truth ledger.

The latency model matches what Scal-Tool assumes observable: an L1 miss
that hits L2 costs ``t_l2_hit`` (the paper's t2); an L2 miss costs
``t_mem + 2 * hops(cpu, home) * t_hop`` plus a dirty-remote intervention
penalty — so the *average* miss latency, the paper's tm(n), emerges from
the home-placement and sharing behaviour of the workload and grows with
machine size through the hop term.  Write-backs and upgrades cost extra
cycles that Equation 1 does not model, providing the realistic residual
error the paper's validation quantifies.
"""

from __future__ import annotations

from ..errors import SimulationError
from .cache import EXCLUSIVE, MODIFIED, SHARED
from .config import MachineConfig
from .counters import CounterSet, GroundTruth
from .directory import BitVectorDirectory, make_directory
from .hierarchy import COHERENCE, COLD, CacheHierarchy
from .interconnect import Interconnect
from .memory import NumaMemory

__all__ = ["CoherenceController", "ProtocolTally"]


class ProtocolTally:
    """Observability tally of coherence protocol transitions.

    Bumped inline by the controller on protocol actions (upgrades,
    invalidations, interventions, downgrades) — all of which sit on the
    L2-miss / upgrade cold paths, not the per-reference hot path — and
    folded into the metrics registry by the machine at run boundaries.
    """

    __slots__ = ("upgrades", "invalidations", "interventions", "downgrades")

    def __init__(self) -> None:
        self.upgrades = 0
        self.invalidations = 0
        self.interventions = 0
        self.downgrades = 0

    def as_dict(self) -> dict:
        return {
            "upgrades": self.upgrades,
            "invalidations": self.invalidations,
            "interventions": self.interventions,
            "downgrades": self.downgrades,
        }


class CoherenceController:
    """Owns the directory and drives all inter-node protocol activity."""

    def __init__(
        self,
        cfg: MachineConfig,
        hierarchies: list[CacheHierarchy],
        memory: NumaMemory,
        interconnect: Interconnect,
        counters: list[CounterSet],
        ground_truth: list[GroundTruth],
        directory_kind: str = "bitvector",
    ) -> None:
        self.cfg = cfg
        self.hierarchies = hierarchies
        self.memory = memory
        self.interconnect = interconnect
        self.counters = counters
        self.gt = ground_truth
        self.directory: BitVectorDirectory = make_directory(cfg.n_processors, directory_kind)
        t = cfg.timing
        self._t_l2_hit = t.t_l2_hit
        self._t_mem = t.t_mem
        self._t_hop = t.t_hop
        self._t_dirty_remote = t.t_dirty_remote
        self._t_upgrade = t.t_upgrade
        self._t_writeback = t.t_writeback
        self._prefetch_factor = t.t_prefetch_factor
        # Per-cpu stream-prefetcher state: the last few L2-miss block ids.
        # A miss whose predecessor block missed recently is covered by the
        # software/stream prefetcher and pays only a fraction of tm.
        self._miss_tails: list[dict[int, None]] = [dict() for _ in range(cfg.n_processors)]
        # MSI has no Exclusive state: read misses always install SHARED,
        # so every first store to a line costs an upgrade transaction —
        # the very traffic the Illinois (MESI) protocol exists to avoid.
        self._msi = cfg.protocol == "msi"
        # Optional per-cpu data TLB: page-granular, fully associative LRU.
        self._tlb_entries = cfg.tlb_entries
        self._t_tlb_miss = t.t_tlb_miss
        self._page_shift = memory.blocks_per_page.bit_length() - 1
        self._tlbs: list[dict[int, None]] = [dict() for _ in range(cfg.n_processors)]
        # Optional per-node victim buffer: the ids of recently evicted L2
        # lines.  A miss on one of them with no remote protocol action
        # refills cheaply (the data is still on its way to / fresh at the
        # home memory).  Coherence-wise the line was truly evicted —
        # directory state and writebacks are unchanged — so this is purely
        # a latency model of an exclusive victim cache.
        self._victim_entries = cfg.victim_entries
        self._t_victim = 2.0 * t.t_l2_hit
        self._victims: list[dict[int, None]] = [dict() for _ in range(cfg.n_processors)]
        self.tally = ProtocolTally()

    # -- the per-reference hot path -------------------------------------------

    def access(self, cpu: int, block: int, is_write: bool) -> float:
        """Simulate one data reference; returns stall cycles beyond cpi0."""
        hier = self.hierarchies[cpu]
        counters = self.counters[cpu]
        gt = self.gt[cpu]

        if is_write:
            counters.graduated_stores += 1
        else:
            counters.graduated_loads += 1

        tlb_stall = 0.0
        if self._tlb_entries:
            tlb = self._tlbs[cpu]
            page = block >> self._page_shift
            if page in tlb:
                del tlb[page]  # LRU bump: re-insert at the back
            else:
                counters.tlb_misses += 1
                gt.tlb_stall_cycles += self._t_tlb_miss
                tlb_stall = self._t_tlb_miss
                if len(tlb) >= self._tlb_entries:
                    del tlb[next(iter(tlb))]
            tlb[page] = None

        l1_hit = hier.l1_hit(block)
        if l1_hit:
            if not is_write:
                return tlb_stall
            state = hier.l2.state_of(block)
            if state == MODIFIED:
                return tlb_stall
            if state == EXCLUSIVE:
                hier.l2.set_state(block, MODIFIED)
                return tlb_stall
            if state == SHARED:
                return tlb_stall + self._upgrade(cpu, block, hier, counters, gt)
            raise SimulationError(f"cpu {cpu}: L1 hit on block {block} absent from L2 (inclusion)")

        counters.l1_data_misses += 1
        state = hier.l2.state_of(block)
        if state:
            # L1 miss, L2 hit: the paper's h2 event, costing t2.
            hier.l2_touch(block)
            self._l1_install(cpu, block, hier)
            stall = self._t_l2_hit
            gt.l2_hit_stall_cycles += stall
            if is_write:
                if state == SHARED:
                    stall += self._upgrade(cpu, block, hier, counters, gt)
                elif state == EXCLUSIVE:
                    hier.l2.set_state(block, MODIFIED)
            return tlb_stall + stall

        # L2 miss: the paper's hm event, costing tm.
        counters.l2_misses += 1
        return tlb_stall + self._l2_miss(cpu, block, is_write, hier, counters, gt)

    # -- protocol pieces ----------------------------------------------------------

    def _upgrade(
        self,
        cpu: int,
        block: int,
        hier: CacheHierarchy,
        counters: CounterSet,
        gt: GroundTruth,
    ) -> float:
        """Store to a SHARED line: invalidate other holders, go MODIFIED."""
        tally = self.tally
        tally.upgrades += 1
        for node in self.directory.sharers(block, exclude=cpu):
            self.hierarchies[node].coherence_invalidate(block)
            tally.invalidations += 1
        self.directory.clear_others(block, keeper=cpu)
        self.directory.set_exclusive(block, cpu)
        hier.l2.set_state(block, MODIFIED)
        counters.store_exclusive_to_shared += 1
        gt.upgrades_data += 1
        gt.upgrade_cycles += self._t_upgrade
        return self._t_upgrade

    def _l2_miss(
        self,
        cpu: int,
        block: int,
        is_write: bool,
        hier: CacheHierarchy,
        counters: CounterSet,
        gt: GroundTruth,
    ) -> float:
        miss_class = hier.classify_miss(block)
        if miss_class == COLD:
            gt.cold_misses += 1
        elif miss_class == COHERENCE:
            gt.coherence_misses += 1
        else:
            gt.replacement_misses += 1

        home = self.memory.home_of(block, cpu)
        interconnect = self.interconnect
        hops = interconnect.table[cpu][home]
        latency = self._t_mem + 2.0 * hops * self._t_hop
        if hops:
            interconnect.traversals += 1
            interconnect.hop_total += hops

        tails = self._miss_tails[cpu]
        prefetched = (block - 1) in tails or (block - 2) in tails
        tails[block] = None
        if len(tails) > 16:
            del tails[next(iter(tails))]

        owner, mask = self.directory.lookup(block)
        tally = self.tally
        intervened_dirty = False
        remote_action = False
        if owner >= 0 and owner != cpu:
            remote_action = True
            tally.interventions += 1
            owner_hier = self.hierarchies[owner]
            owner_state = owner_hier.l2_state(block)
            if owner_state == 0:
                raise SimulationError(
                    f"directory names node {owner} owner of block {block} but it holds nothing"
                )
            if is_write:
                owner_hier.coherence_invalidate(block)
                self.directory.clear_others(block, keeper=cpu)
                tally.invalidations += 1
            else:
                was_dirty = owner_hier.coherence_downgrade(block)
                self.directory.demote_owner(block)
                intervened_dirty = was_dirty or owner_state == MODIFIED
                tally.downgrades += 1
            if owner_state == MODIFIED:
                # Cache-to-cache intervention: home forwards to the dirty
                # owner, which supplies the line.
                forward_hops = interconnect.table[home][owner]
                latency += self._t_dirty_remote + 2.0 * forward_hops * self._t_hop
                intervened_dirty = True
                if forward_hops:
                    interconnect.traversals += 1
                    interconnect.hop_total += forward_hops
        elif is_write and mask:
            sharers = self.directory.sharers(block, exclude=cpu)
            if sharers:
                remote_action = True
            for node in sharers:
                self.hierarchies[node].coherence_invalidate(block)
                tally.invalidations += 1
            self.directory.clear_others(block, keeper=cpu)

        # Directory update + fill state (Illinois: exclusive-clean on a read
        # miss with no other holders).
        if is_write:
            self.directory.set_exclusive(block, cpu)
            fill_state = MODIFIED
        elif self._msi or self.directory.sharers(block, exclude=cpu):
            # Someone else may hold the line (for a coarse vector this is
            # conservative: stale group bits force SHARED, never a wrong E);
            # under MSI there is no Exclusive state at all.
            self.directory.add_sharer(block, cpu)
            fill_state = SHARED
        else:
            self.directory.set_exclusive(block, cpu)
            fill_state = EXCLUSIVE

        # Stream prefetching hides memory-sourced latency but cannot hide a
        # dirty-remote intervention: the data is not in memory until the
        # owner responds, so the consumer stalls for the full three-hop
        # transaction regardless of prefetch distance.
        if prefetched and not intervened_dirty:
            latency *= self._prefetch_factor
        if self._victim_entries:
            victims = self._victims[cpu]
            if block in victims:
                del victims[block]
                if not remote_action and latency > self._t_victim:
                    latency = self._t_victim
                    gt.victim_hits += 1
        gt.memory_stall_cycles += latency
        evicted = hier.l2_fill(block, fill_state)
        if evicted is not None:
            self.directory.remove_node(evicted.block, cpu)
            if evicted.dirty:
                gt.writebacks += 1
                gt.writeback_cycles += self._t_writeback
                latency += self._t_writeback
            if self._victim_entries:
                victims = self._victims[cpu]
                victims[evicted.block] = None
                if len(victims) > self._victim_entries:
                    del victims[next(iter(victims))]
        self._l1_install(cpu, block, hier)

        if hops == 0 and not intervened_dirty:
            gt.local_misses += 1
        else:
            gt.remote_misses += 1
            if intervened_dirty:
                gt.dirty_remote_misses += 1
        return latency

    @staticmethod
    def _l1_install(cpu: int, block: int, hier: CacheHierarchy) -> None:
        if not hier.l1.contains(block):
            hier.l1_fill(block)

    # -- global invariants (property tests) -----------------------------------------

    def check_invariants(self) -> None:
        """Directory and caches must agree; at most one M/E holder per block."""
        self.directory.check_invariants()
        holders: dict[int, list[tuple[int, int]]] = {}
        for hier in self.hierarchies:
            hier.check_invariants()
            for block in hier.l2.resident_blocks():
                holders.setdefault(block, []).append((hier.node, hier.l2.state_of(block)))
        for block, entries in holders.items():
            exclusive = [(n, s) for n, s in entries if s in (EXCLUSIVE, MODIFIED)]
            if len(exclusive) > 1:
                raise SimulationError(f"block {block}: multiple exclusive holders {exclusive}")
            if exclusive and len(entries) > 1:
                raise SimulationError(f"block {block}: exclusive holder coexists with sharers {entries}")
            owner, mask = self.directory.lookup(block)
            if self.directory.exact:
                for node, _state in entries:
                    if not (mask & (1 << node)):
                        raise SimulationError(f"block {block}: holder {node} missing from directory mask")
            if exclusive and owner != exclusive[0][0]:
                raise SimulationError(
                    f"block {block}: directory owner {owner} != cache owner {exclusive[0][0]}"
                )
