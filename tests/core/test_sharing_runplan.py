"""Sharing extension (Section 6) and run-plan accounting (Tables 1/3)."""

import pytest

from repro.core import ScalTool
from repro.core.runplan import campaign_resources, table3_matrix
from repro.core.sharing import analyze_sharing, instrumented_sync_ops
from repro.errors import ConfigError, InsufficientDataError
from repro.machine.system import DsmMachine
from repro.runner.campaign import CampaignConfig, ScalToolCampaign

from ..conftest import small_synthetic, tiny_machine_config


@pytest.fixture(scope="module")
def sharing_campaign():
    """A campaign whose workload has real data sharing."""

    def factory(n):
        return tiny_machine_config(n_processors=n)

    wl = small_synthetic(iters=3, sharing_frac=0.15, imbalance_amp=0.1)
    cfg = CampaignConfig(
        s0=32 * 1024, processor_counts=(1, 2, 4), sync_kernel_barriers=20, spin_kernel_episodes=5
    )
    return ScalToolCampaign(wl, cfg, machine_factory=factory).run()


class TestSharingExtension:
    def test_instrumented_ops_match_barriers(self, sharing_campaign):
        ops = instrumented_sync_ops(sharing_campaign)
        for n, rec in sharing_campaign.base_runs().items():
            assert ops[n] == rec.ground_truth.barriers

    def test_contamination_detected(self, sharing_campaign):
        analysis = ScalTool(sharing_campaign).analyze()
        sh = analyze_sharing(analysis, sharing_campaign)
        assert sh.contamination(4) > 0.0

    def test_corrected_sync_closer_to_truth(self, sharing_campaign):
        analysis = ScalTool(sharing_campaign).analyze()
        sh = analyze_sharing(analysis, sharing_campaign)
        n = 4
        true_sync = sharing_campaign.base_runs()[n].ground_truth.sync_cycles
        raw_err = abs(analysis.curves.sync_cost[n] - true_sync)
        corrected_err = abs(sh.corrected_curves.sync_cost[n] - true_sync)
        assert corrected_err <= raw_err

    def test_rows(self, sharing_campaign):
        analysis = ScalTool(sharing_campaign).analyze()
        sh = analyze_sharing(analysis, sharing_campaign)
        rows = sh.rows()
        assert {"n", "sync ops", "sharing ops", "contamination"} <= set(rows[0])

    def test_requires_instrumentation(self, sharing_campaign):
        from repro.runner.campaign import CampaignData

        stripped = CampaignData(
            workload=sharing_campaign.workload,
            s0=sharing_campaign.s0,
            records=[r.without_ground_truth() for r in sharing_campaign.records],
        )
        with pytest.raises(InsufficientDataError):
            instrumented_sync_ops(stripped)


class TestTable3:
    def test_paper_matrix_shape(self):
        m = table3_matrix(640 * 1024, (1, 2, 4, 8, 16, 32))
        assert m.runs() == 11  # 6 base + 5 fractional
        assert m.processors() == 68  # 2^6 + 6 - 2

    def test_base_row_all_counts(self):
        m = table3_matrix(1024, (1, 2, 4))
        assert m.cells[0] == (True, True, True)

    def test_fraction_rows_uniprocessor_only(self):
        m = table3_matrix(1024, (1, 2, 4))
        for row in m.cells[1:]:
            assert row == (True, False, False)

    def test_counts_must_be_powers_of_two(self):
        with pytest.raises(ConfigError):
            table3_matrix(1024, (1, 3))

    def test_format_renders(self):
        text = table3_matrix(64 * 1024, (1, 2, 4)).format()
        assert "s0" in text and "x" in text

    def test_campaign_resources(self):
        res = campaign_resources(1024, (1, 2, 4, 8, 16, 32))
        assert res["scal_tool"].processors < res["existing"].processors
