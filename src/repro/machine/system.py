"""The DSM machine: ties caches, directory, network, memory, and sync together.

:class:`DsmMachine` is the substrate every experiment runs on.  A *run*
executes one workload at one data-set size on the configured processor
count and yields a :class:`RunResult` holding

* the hardware-visible :class:`~repro.machine.counters.CounterSet` per
  processor (all Scal-Tool may consume),
* the :class:`~repro.machine.counters.GroundTruth` ledger per processor
  (used only by the validation tools, in the role speedshop plays in the
  paper),
* per-phase counter deltas (used by the perfex multiplexing emulation),
* the wall-clock cycle count.

The machine self-checks after every run: the ground-truth cycle ledger must
reconcile with the cycle counter, and the coherence invariants must hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import SimulationError, WorkloadError
from ..obs import runtime as obs
from .coherence import CoherenceController
from .config import MachineConfig
from .counters import CounterSet, GroundTruth
from .hierarchy import CacheHierarchy
from .interconnect import Interconnect
from .memory import NumaMemory
from .processor import PhaseRunner
from .sync import BarrierOutcome, SyncEngine, SyncVariable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workloads.base import Workload

__all__ = ["DsmMachine", "RunResult"]

# Instruction-fetch model constants (enabled by
# MachineConfig.model_instruction_misses): a small resident code footprint
# whose cold misses and steady-state L1I miss rate reproduce the slight
# hit-rate droop at tiny data sets in the paper's Figure 3-(a).
_CODE_BLOCKS = 32
_L1I_MISS_RATE = 2.0e-4


@dataclass
class RunResult:
    """Everything one run produced."""

    workload_name: str
    size_bytes: int
    n_processors: int
    config: MachineConfig
    per_cpu_counters: list[CounterSet]
    per_cpu_ground_truth: list[GroundTruth]
    phase_counters: list[tuple[str, CounterSet]]
    wall_cycles: float
    barrier_log: list[BarrierOutcome] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    @property
    def counters(self) -> CounterSet:
        """All processors accumulated — what the paper's figures plot."""
        return CounterSet.total(self.per_cpu_counters)

    @property
    def ground_truth(self) -> GroundTruth:
        return GroundTruth.total(self.per_cpu_ground_truth)

    @property
    def total_cycles(self) -> float:
        """Accumulated cycles over all processors (paper Figures 6/9/12)."""
        return self.counters.cycles

    def speedup_over(self, uniprocessor: "RunResult") -> float:
        """Wall-clock speedup relative to a 1-processor run."""
        if uniprocessor.wall_cycles <= 0:
            raise SimulationError("uniprocessor run has no cycles")
        return uniprocessor.wall_cycles / self.wall_cycles


class DsmMachine:
    """One configured DSM multiprocessor instance."""

    def __init__(self, cfg: MachineConfig, directory_kind: str = "bitvector") -> None:
        self.cfg = cfg
        self.interconnect = Interconnect(cfg.interconnect, cfg.n_processors)
        self._directory_kind = directory_kind
        self._build_state()

    def _build_state(self) -> None:
        cfg = self.cfg
        self.memory = NumaMemory(cfg.memory, cfg.n_processors, cfg.line_size)
        self.hierarchies = [
            CacheHierarchy(node, cfg.l1, cfg.l2, seed=cfg.seed) for node in range(cfg.n_processors)
        ]
        self.counters = [CounterSet() for _ in range(cfg.n_processors)]
        self.ground_truth = [GroundTruth() for _ in range(cfg.n_processors)]
        self.controller = CoherenceController(
            cfg,
            self.hierarchies,
            self.memory,
            self.interconnect,
            self.counters,
            self.ground_truth,
            directory_kind=self._directory_kind,
        )
        self.sync = SyncEngine(cfg, self.interconnect, self.memory, self.counters, self.ground_truth)
        self.runner = PhaseRunner(
            self.controller, self.counters, self.ground_truth, cfg.interleave_chunk
        )
        self.clocks = [0.0] * cfg.n_processors
        self._code_warm = [False] * cfg.n_processors
        self.barrier_var: SyncVariable = self.sync.allocate_variable("global_barrier")
        self.interconnect.reset_obs()

    # -- conveniences used by workloads -----------------------------------------

    @property
    def n_processors(self) -> int:
        return self.cfg.n_processors

    @property
    def line_size(self) -> int:
        return self.cfg.line_size

    @property
    def allocator(self):
        return self.memory.allocator

    def reset(self) -> None:
        """Return to a pristine state (fresh caches, homes, counters, clocks)."""
        self._build_state()

    # -- the run loop -------------------------------------------------------------

    def run(self, workload: "Workload", size_bytes: int, check: bool = True) -> RunResult:
        """Execute ``workload`` at data-set size ``size_bytes``; fresh machine state."""
        session = obs.active()
        tracer = session.tracer if session is not None else obs.tracer()
        cfg = self.cfg
        run_span = tracer.span(
            "machine.run", workload=workload.name, size_bytes=size_bytes, n=cfg.n_processors
        )
        with run_span:
            with tracer.span("machine.build"):
                self.reset()
                phases = workload.build(self, size_bytes)
            phase_counters: list[tuple[str, CounterSet]] = []
            barrier_log: list[BarrierOutcome] = []
            before = CounterSet()

            n_phases = 0
            for phase in phases:
                if phase.n_processors != cfg.n_processors:
                    raise WorkloadError(
                        f"phase {phase.name!r} sized for {phase.n_processors} cpus "
                        f"on a {cfg.n_processors}-cpu machine"
                    )
                cpi0 = phase.cpi0_override if phase.cpi0_override is not None else workload.cpi0
                with tracer.span("machine.phase", phase=phase.name):
                    self.runner.run_phase(phase, cpi0, self.clocks)
                    if cfg.model_instruction_misses:
                        self._charge_instruction_misses(phase)
                    if phase.barrier:
                        barrier_log.append(self.sync.barrier(self.barrier_var, self.clocks, cpi0))
                for cpu in range(cfg.n_processors):
                    self.counters[cpu].cycles = self.clocks[cpu]
                snapshot = CounterSet.total(self.counters)
                delta = snapshot + before.scaled(-1.0)
                phase_counters.append((phase.name, delta))
                before = snapshot
                n_phases += 1

            if n_phases == 0:
                raise WorkloadError(f"workload {workload.name!r} produced no phases")

            for cpu in range(cfg.n_processors):
                self.counters[cpu].cycles = self.clocks[cpu]

            if check:
                with tracer.span("machine.self_check"):
                    self._self_check()

            if session is not None:
                self._emit_obs(session, run_span, n_phases)

        return RunResult(
            workload_name=workload.name,
            size_bytes=size_bytes,
            n_processors=cfg.n_processors,
            config=cfg,
            per_cpu_counters=[c for c in self.counters],
            per_cpu_ground_truth=[g for g in self.ground_truth],
            phase_counters=phase_counters,
            wall_cycles=max(self.clocks),
            barrier_log=barrier_log,
            metadata={"workload_params": workload.describe_params(), "n_phases": n_phases},
        )

    # -- observability -------------------------------------------------------------

    # Fixed component order so exports are deterministic.
    _OBS_COMPONENTS = ("compute", "cache", "memory", "interconnect", "coherence", "sync")

    def _emit_obs(self, session, run_span, n_phases: int) -> None:
        """Fold the run's tallies into component spans and registry metrics.

        Per-component *time* cannot be measured directly (every reference
        walks L1/L2/directory/network in one call), so each component's
        span duration is the run's measured wall time attributed by its
        share of the simulated cycle ledger; the attrs carry the simulated
        cycles and event volumes, which are the exact quantities.
        """
        t = self.cfg.timing
        gt = GroundTruth.total(self.ground_truth)
        counters = CounterSet.total(self.counters)
        ic = self.interconnect
        tally = self.controller.tally

        hop_cycles = 2.0 * ic.hop_total * t.t_hop
        dirty_cycles = gt.dirty_remote_misses * t.t_dirty_remote
        shares = {
            "compute": gt.compute_cycles,
            "cache": gt.l2_hit_stall_cycles + gt.writeback_cycles + gt.tlb_stall_cycles,
            "memory": max(gt.memory_stall_cycles - hop_cycles - dirty_cycles, 0.0),
            "interconnect": hop_cycles,
            "coherence": gt.upgrade_cycles + dirty_cycles,
            "sync": gt.sync_cycles + gt.spin_cycles,
        }
        extra = {
            "cache": {
                "l1_misses": counters.l1_data_misses,
                "l2_misses": counters.l2_misses,
                "writebacks": gt.writebacks,
            },
            "interconnect": {
                "traversals": ic.traversals,
                "hop_total": ic.hop_total,
                "mean_hops": round(ic.mean_traversal_hops(), 4),
            },
            "coherence": tally.as_dict(),
            "sync": {"barriers": gt.barriers, "lock_acquires": gt.lock_acquires},
        }
        total_cycles = sum(shares.values()) or 1.0
        elapsed = run_span.elapsed()
        tracer = session.tracer
        for name in self._OBS_COMPONENTS:
            cycles = shares[name]
            tracer.emit(
                f"machine.component.{name}",
                elapsed * (cycles / total_cycles),
                simulated_cycles=round(cycles, 1),
                share=round(cycles / total_cycles, 6),
                **extra.get(name, {}),
            )

        reg = session.registry
        reg.inc("machine.runs")
        reg.inc("machine.phases", n_phases)
        reg.inc("machine.refs", counters.graduated_loads + counters.graduated_stores)
        reg.inc("machine.cache.l1_misses", counters.l1_data_misses)
        reg.inc("machine.cache.l2_misses", counters.l2_misses)
        reg.inc("machine.coherence.upgrades", tally.upgrades)
        reg.inc("machine.coherence.invalidations", tally.invalidations)
        reg.inc("machine.coherence.interventions", tally.interventions)
        reg.inc("machine.coherence.downgrades", tally.downgrades)
        reg.inc("machine.interconnect.traversals", ic.traversals)
        reg.inc("machine.interconnect.hops", ic.hop_total)
        reg.inc("machine.sync.barriers", gt.barriers)
        reg.observe("machine.run_seconds", elapsed)
        if elapsed > 0:
            reg.observe("machine.refs_per_second", (counters.graduated_loads + counters.graduated_stores) / elapsed)

    def _charge_instruction_misses(self, phase) -> None:
        t = self.cfg.timing
        for cpu, seg in enumerate(phase.segments):
            if seg is None:
                continue
            counters = self.counters[cpu]
            gt = self.gt_of(cpu)
            stall = 0.0
            steady = seg.n_instructions * _L1I_MISS_RATE
            counters.l1_instruction_misses += steady
            stall += steady * t.t_l2_hit
            gt.l2_hit_stall_cycles += steady * t.t_l2_hit
            if not self._code_warm[cpu]:
                counters.l1_instruction_misses += _CODE_BLOCKS
                counters.l2_misses += _CODE_BLOCKS  # unified L2: code cold misses
                stall += _CODE_BLOCKS * t.t_mem
                gt.memory_stall_cycles += _CODE_BLOCKS * t.t_mem
                gt.cold_misses += _CODE_BLOCKS
                gt.local_misses += _CODE_BLOCKS
                self._code_warm[cpu] = True
            self.clocks[cpu] += stall

    def gt_of(self, cpu: int) -> GroundTruth:
        return self.ground_truth[cpu]

    def _self_check(self) -> None:
        """Post-run consistency: ledger reconciles, coherence invariants hold."""
        for cpu in range(self.cfg.n_processors):
            ledger = self.ground_truth[cpu].total_cycles
            clock = self.clocks[cpu]
            if abs(ledger - clock) > max(1.0, 1e-6 * clock):
                raise SimulationError(
                    f"cpu {cpu}: ground-truth ledger {ledger:.1f} != clock {clock:.1f}"
                )
        self.controller.check_invariants()
