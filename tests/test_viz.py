"""ASCII charts and tables."""

from repro.viz.ascii_chart import ascii_chart
from repro.viz.tables import format_table


class TestChart:
    def test_renders_series(self):
        text = ascii_chart({"a": [(1, 1.0), (2, 4.0)], "b": [(1, 2.0), (2, 3.0)]}, title="T")
        assert "T" in text
        assert "* a" in text and "o b" in text

    def test_empty(self):
        assert ascii_chart({}) == "(empty chart)"

    def test_axis_labels(self):
        text = ascii_chart({"a": [(0, 0.0), (10, 100.0)]})
        assert "100" in text and "0" in text

    def test_flat_series_no_crash(self):
        text = ascii_chart({"a": [(1, 5.0), (2, 5.0)]})
        assert "|" in text

    def test_single_point(self):
        assert "|" in ascii_chart({"a": [(1, 1.0)]})

    def test_marks_distinct(self):
        text = ascii_chart({f"s{i}": [(i, float(i))] for i in range(4)})
        for mark in "*o+x":
            assert mark in text


class TestTable:
    def test_alignment_and_header(self):
        rows = [{"n": 1, "value": 10.5}, {"n": 32, "value": 123456.0}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "n" in lines[1] and "value" in lines[1]
        assert "123,456" in text

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        assert "b" not in text.splitlines()[0]

    def test_missing_cells_empty(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 9}], columns=["a", "b"])
        assert text

    def test_small_floats_four_decimals(self):
        assert "0.1235" in format_table([{"x": 0.123456}])

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])


class TestStackedBars:
    def rows(self):
        return {
            "n=1": {"useful": 100.0, "L2Lim": 50.0, "Sync": 0.0},
            "n=8": {"useful": 100.0, "L2Lim": 0.0, "Sync": 80.0},
        }

    def test_renders_rows_and_legend(self):
        from repro.viz.bars import stacked_bars

        text = stacked_bars(self.rows(), title="demo")
        assert "demo" in text
        assert "n=1" in text and "n=8" in text
        assert "# useful" in text and "= L2Lim" in text

    def test_totals_printed(self):
        from repro.viz.bars import stacked_bars

        text = stacked_bars(self.rows())
        assert "150" in text and "180" in text

    def test_scale_shared(self):
        from repro.viz.bars import stacked_bars

        text = stacked_bars(self.rows(), width=40)
        bar_lengths = [
            len(line.split("|")[1].rstrip())
            for line in text.splitlines()
            if "|" in line
        ]
        # the larger total gets the longer bar
        assert bar_lengths[1] > bar_lengths[0]

    def test_empty(self):
        from repro.viz.bars import stacked_bars

        assert stacked_bars({}) == "(no bars)"
        assert stacked_bars({"a": {"x": 0.0}}) == "(no bars)"

    def test_negative_parts_skipped(self):
        from repro.viz.bars import stacked_bars

        text = stacked_bars({"a": {"x": 10.0, "y": -5.0}})
        assert "10" in text


class TestCostBars:
    def test_in_report(self, mini_campaign):
        from repro.core import ScalTool
        from repro.core.report import cost_bars

        analysis = ScalTool(mini_campaign).analyze()
        text = cost_bars(analysis)
        assert "cycle composition" in text
        assert "useful" in text and "Sync" in text
        # and it is embedded in the full report
        assert "cycle composition" in analysis.report()
