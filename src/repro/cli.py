"""Command-line interface: ``scaltool``.

Subcommands mirror the paper's workflow:

* ``scaltool run`` — execute one workload run and print its perfex report;
* ``scaltool campaign`` — run the Table-3 campaign, writing one counter
  file per run into a directory;
* ``scaltool analyze`` — run Scal-Tool over a campaign directory (or run
  the campaign inline) and print the bottleneck report;
* ``scaltool validate`` — compare the MP estimate against the simulated
  speedshop measurement;
* ``scaltool whatif`` — machine-parameter experiments over a campaign;
* ``scaltool profile`` — run a campaign + analysis under the observability
  layer and print the span/metric profile report;
* ``scaltool plan`` — print the Table 1 / Table 3 resource accounting;
* ``scaltool list`` — available workloads;
* ``scaltool serve`` / ``submit`` / ``status`` / ``result`` — the analysis
  service (see :mod:`repro.service` and ``docs/service.md``): serve the
  HTTP JSON API, submit a request to it, and read a job back.

The ``analyze``, ``sweep``, ``whatif``, ``predict`` and ``blame`` subcommands execute
through the same :mod:`repro.service.requests` handlers the service uses,
so a service job's result is byte-identical to the direct CLI output.

Every subcommand accepts ``--verbose`` (per-run campaign progress and
debug logging on stderr) and ``--metrics-out PATH`` (write the session's
JSONL metrics manifest after the command finishes).
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .core import ScalTool, validate_mp
from .core.runplan import table1_rows, table3_matrix
from .errors import ReproError
from .obs import configure_logging, export_jsonl, format_profile
from .obs import runtime as obs_runtime
from .runner import CampaignConfig, ScalToolCampaign, run_experiment
from .runner.campaign import CampaignData
from .runner.cache import cached_campaign
from .runner.engine import default_executor
from .tools.perfex import format_report
from .viz.tables import format_table
from .workloads import available_workloads, make_workload

__all__ = ["main", "build_parser"]

_CACHE_EPILOG = (
    "The campaign cache lives in $SCALTOOL_CACHE_DIR when that environment "
    "variable is set, otherwise in .scaltool_cache/ under the current "
    "directory; --cache-dir overrides both."
)


def _counts(text: str) -> tuple[int, ...]:
    try:
        values = tuple(int(x) for x in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad processor counts: {text!r}")
    if not values:
        raise argparse.ArgumentTypeError("empty processor counts")
    return values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scaltool",
        description="Scal-Tool: isolate and quantify scalability bottlenecks (SC'99 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags, accepted by every subcommand (after the command).
    obs_common = argparse.ArgumentParser(add_help=False)
    obs_common.add_argument(
        "-v", "--verbose", action="store_true",
        help="per-run campaign progress and debug logging on stderr",
    )
    obs_common.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the observability session as a JSONL metrics manifest",
    )

    p_list = sub.add_parser("list", parents=[obs_common], help="list available workloads")

    common = argparse.ArgumentParser(add_help=False, parents=[obs_common])
    common.add_argument("workload", help="workload name (see `scaltool list`)")
    common.add_argument("--s0", type=int, default=None, help="base data-set size in bytes")
    common.add_argument(
        "--counts", type=_counts, default=(1, 2, 4, 8, 16, 32), help="processor counts, e.g. 1,2,4,8"
    )
    common.add_argument(
        "--cache-dir", default=None,
        help="campaign cache directory (default: $SCALTOOL_CACHE_DIR or .scaltool_cache)",
    )
    common.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run campaign experiments on N worker processes (default: 1, serial)",
    )

    p_run = sub.add_parser(
        "run", parents=[obs_common], help="run one experiment, print its perfex report"
    )
    p_run.add_argument("workload")
    p_run.add_argument("--size", type=int, default=None, help="data-set size in bytes")
    p_run.add_argument("-n", "--processors", type=int, default=1)

    p_campaign = sub.add_parser("campaign", parents=[common], help="run the Table-3 campaign")
    p_campaign.add_argument("--out", required=True, help="directory for the counter files")
    p_campaign.add_argument(
        "--export-speedup", default=None, metavar="PATH",
        help="also write the measured speedup curve as a scaltool-speedup-v1 "
        "dataset (.csv or .json) for `scaltool models`",
    )

    p_analyze = sub.add_parser(
        "analyze", parents=[common], help="full bottleneck analysis", epilog=_CACHE_EPILOG
    )
    p_analyze.add_argument("--from-dir", default=None, help="load a saved campaign instead of running")
    p_analyze.add_argument("--markdown", action="store_true", help="emit a markdown report")
    p_analyze.add_argument(
        "--save-result", default=None, metavar="PATH",
        help="also write the full result (output + data + lineage) as JSON, "
        "for later `scaltool explain` / `scaltool doctor`",
    )

    p_validate = sub.add_parser("validate", parents=[common], help="MP estimate vs speedshop")

    p_segments = sub.add_parser(
        "segments", parents=[common], help="per-segment breakdown (Section 2.1)"
    )
    p_segments.add_argument(
        "--group",
        action="append",
        default=None,
        metavar="NAME=PATTERN",
        help="segment definition, e.g. --group spmv='spmv_*' (repeatable); "
        "default: one segment per phase-name prefix",
    )

    p_blame = sub.add_parser(
        "blame", parents=[obs_common],
        help="graph-based scaling-loss localization: which segment loses the cycles, and why",
    )
    p_blame.add_argument(
        "target",
        help="a workload name, a saved campaign directory (campaign.jsonl), a "
        "stored job record / --save-result JSON, or a job id (local store, or --url)",
    )
    p_blame.add_argument("--s0", type=int, default=None, help="base data-set size in bytes")
    p_blame.add_argument(
        "--counts", type=_counts, default=(1, 2, 4, 8, 16, 32),
        help="processor counts, e.g. 1,2,4,8 (workload targets only)",
    )
    p_blame.add_argument(
        "--cache-dir", default=None,
        help="campaign cache directory (default: $SCALTOOL_CACHE_DIR or .scaltool_cache)",
    )
    p_blame.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run any missing campaign experiments on N worker processes",
    )
    p_blame.add_argument(
        "--group", action="append", default=None, metavar="NAME=PATTERN",
        help="segment definition, e.g. --group spmv='spmv_*' (repeatable); "
        "default: one segment per phase-name prefix",
    )
    p_blame.add_argument(
        "--against", default=None, metavar="TARGET",
        help="diff mode: compare against another campaign/report target and "
        "explain where their scaling losses differ",
    )
    p_blame.add_argument(
        "--url", default=None,
        help="fetch the report from a running service (job-id targets only)",
    )
    p_blame.add_argument(
        "--json", action="store_true", help="print the raw BlameReport (or diff) as JSON"
    )

    p_sharing = sub.add_parser(
        "sharing", parents=[common], help="sharing-corrected analysis (Section 6 extension)"
    )

    p_profile = sub.add_parser(
        "profile",
        parents=[obs_common],
        help="profile a campaign + analysis run (spans, metrics, component times)",
    )
    p_profile.add_argument("workload", help="workload name (see `scaltool list`)")
    p_profile.add_argument("--s0", type=int, default=None, help="base data-set size in bytes")
    p_profile.add_argument(
        "--counts", type=_counts, default=(1, 2, 4),
        help="processor counts to profile, e.g. 1,2,4 (kept small: profiling re-runs everything)",
    )
    p_profile.add_argument(
        "--no-analysis", action="store_true", help="profile the campaign only, skip the estimators"
    )
    p_profile.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run campaign experiments on N worker processes (default: 1, serial)",
    )
    p_profile.add_argument(
        "--lines", action="store_true",
        help="also run the statistical line sampler: hot lines per span "
        "(stack samples attributed to the open engine phase)",
    )
    p_profile.add_argument(
        "--sample-interval", type=float, default=5.0, metavar="MS",
        help="sampling interval in milliseconds (default: 5)",
    )
    p_profile.add_argument(
        "--memory", action="store_true",
        help="with --lines: track tracemalloc peak + top allocating lines "
        "(adds tracemalloc's own overhead)",
    )
    p_profile.add_argument(
        "--flame", default=None, metavar="PATH",
        help="with --lines: write collapsed-stack flamegraph lines "
        "(span;frame;frame count) to PATH",
    )
    p_profile.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="with --lines: save the full line profile as JSON "
        "(render later with `scaltool obs hot PATH`)",
    )

    p_sweep = sub.add_parser(
        "sweep",
        parents=[obs_common],
        help="run a (workload params) x (machine params) grid, print a metric table",
        epilog=_CACHE_EPILOG,
    )
    p_sweep.add_argument("workload", help="workload name (see `scaltool list`)")
    p_sweep.add_argument("--size", type=int, default=None, help="data-set size in bytes")
    p_sweep.add_argument("-n", "--processors", type=int, default=8)
    p_sweep.add_argument(
        "--workload-axis", action="append", default=None, metavar="NAME=V1,V2",
        help="workload constructor axis, e.g. --workload-axis halo_blocks=0,1,2 (repeatable)",
    )
    p_sweep.add_argument(
        "--machine-axis", action="append", default=None, metavar="NAME=V1,V2",
        help="machine configuration axis, e.g. --machine-axis protocol=mesi,msi (repeatable)",
    )
    p_sweep.add_argument(
        "--metric", action="append", default=None, metavar="NAME",
        help="counter to tabulate per grid point (CounterSet field or 'cpi'; "
        "repeatable; default: cpi)",
    )
    p_sweep.add_argument(
        "--cache-dir", default=None,
        help="per-run cache directory (default: $SCALTOOL_CACHE_DIR or .scaltool_cache)",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run grid points on N worker processes (default: 1, serial)",
    )

    p_topology = sub.add_parser(
        "topology", parents=[obs_common], help="tm(n) growth by interconnect topology"
    )
    p_topology.add_argument("--counts", type=_counts, default=(2, 8, 32))
    p_topology.add_argument(
        "--topologies", default="hypercube,mesh,ring,crossbar", help="comma-separated list"
    )

    p_predict = sub.add_parser(
        "predict", parents=[common], help="extrapolate the scaling to unmeasured counts"
    )
    p_predict.add_argument(
        "--to", type=_counts, default=(48, 64, 128), help="counts to predict, e.g. 64,128"
    )

    p_models = sub.add_parser(
        "models", parents=[obs_common],
        help="fit USL/granularity/Scal-Tool scalability models and cross-validate them",
        epilog=_CACHE_EPILOG,
    )
    p_models.add_argument(
        "action", choices=("fit", "compare", "predict"),
        help="fit: per-model coefficients; compare: cross-validate the suite; "
        "predict: extrapolate with CI bands",
    )
    p_models.add_argument(
        "target",
        help="workload name, campaign directory, speedup dataset (.csv/.json), "
        "saved result, or local job id",
    )
    p_models.add_argument("--s0", type=int, default=None, help="base data-set size in bytes")
    p_models.add_argument(
        "--counts", type=_counts, default=(1, 2, 4, 8, 16, 32),
        help="processor counts, e.g. 1,2,4,8 (workload targets)",
    )
    p_models.add_argument(
        "--to", type=_counts, default=(32, 64, 128),
        help="counts to extrapolate to (predict), e.g. 64,128",
    )
    p_models.add_argument(
        "--cache-dir", default=None,
        help="campaign cache directory (default: $SCALTOOL_CACHE_DIR or .scaltool_cache)",
    )
    p_models.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run campaign experiments on N worker processes (default: 1, serial)",
    )
    p_models.add_argument("--json", action="store_true", help="print the structured report as JSON")
    p_models.add_argument(
        "--save-result", default=None, metavar="PATH",
        help="also write the full result (output + data + lineage) as JSON",
    )

    p_balance = sub.add_parser(
        "balance", parents=[common], help="per-processor load-balance report"
    )

    p_whatif = sub.add_parser("whatif", parents=[common], help="machine-parameter experiments")
    p_whatif.add_argument("--t2", type=float, default=1.0, help="scale factor for t2")
    p_whatif.add_argument("--tm", type=float, default=1.0, help="scale factor for tm")
    p_whatif.add_argument("--tsyn", type=float, default=1.0, help="scale factor for tsyn")
    p_whatif.add_argument("--cpi0", type=float, default=1.0, help="scale factor for cpi0")
    p_whatif.add_argument("--l2", type=float, default=None, help="L2 size factor k")

    p_plan = sub.add_parser(
        "plan", parents=[obs_common], help="print Table 1 / Table 3 resource accounting"
    )
    p_plan.add_argument("--n", type=int, default=6, help="number of processor counts (1..2^(n-1))")
    p_plan.add_argument("--s0", type=int, default=640 * 1024)

    # -- the analysis service (see docs/service.md) --------------------------------
    p_serve = sub.add_parser(
        "serve", parents=[obs_common], help="serve the analysis HTTP JSON API",
        epilog=_CACHE_EPILOG,
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8032)
    p_serve.add_argument(
        "--cache-dir", default=None,
        help="cache root (runs + job store); default: $SCALTOOL_CACHE_DIR or .scaltool_cache",
    )
    p_serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="engine executor width: run batched experiments on N worker processes",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes: 1 serves in-process, N>=2 starts a dispatcher"
        " that consistent-hashes job fingerprints onto N worker shards",
    )
    p_serve.add_argument(
        "--concurrency", type=int, default=2, metavar="N",
        help="concurrent jobs in flight per worker process",
    )
    p_serve.add_argument(
        "--claim-ttl", type=float, default=60.0, metavar="SECONDS",
        help="in-flight claim TTL: a claim orphaned by a dead worker is"
        " reclaimable after this long without a heartbeat",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=32, metavar="N",
        help="admission bound on queued+running jobs (429 beyond it)",
    )
    p_serve.add_argument(
        "--job-timeout", type=float, default=600.0, metavar="SECONDS",
        help="fail a job still running after this long",
    )

    client_common = argparse.ArgumentParser(add_help=False, parents=[obs_common])
    client_common.add_argument(
        "--url", default=None,
        help="service base URL (default: $SCALTOOL_SERVICE_URL or http://127.0.0.1:8032)",
    )

    p_submit = sub.add_parser(
        "submit", parents=[client_common], help="submit a request to a running service"
    )
    p_submit.add_argument(
        "kind", help="analyze | blame | campaign | models | sweep | whatif | predict"
    )
    p_submit.add_argument("workload", help="workload name (see `scaltool list`)")
    p_submit.add_argument("--s0", type=int, default=None, help="base data-set size in bytes")
    p_submit.add_argument("--size", type=int, default=None, help="data-set size (sweep)")
    p_submit.add_argument("--counts", type=_counts, default=None, help="processor counts, e.g. 1,2,4")
    p_submit.add_argument("-n", "--processors", type=int, default=None, help="processor count (sweep)")
    p_submit.add_argument("--to", type=_counts, default=None, help="counts to predict, e.g. 64,128")
    p_submit.add_argument(
        "--arg", action="append", default=None, metavar="NAME=VALUE",
        help="extra payload field, e.g. --arg tm=0.5 or --arg markdown=true (repeatable)",
    )
    p_submit.add_argument("--priority", type=int, default=None, help="lower runs sooner")
    p_submit.add_argument(
        "--wait", action="store_true", help="block until the job finishes, print its output"
    )
    p_submit.add_argument("--timeout", type=float, default=600.0, help="--wait timeout in seconds")

    p_status = sub.add_parser(
        "status", parents=[client_common], help="print a service job's status as JSON"
    )
    p_status.add_argument("job_id")

    p_result = sub.add_parser(
        "result", parents=[client_common], help="print a finished service job's output"
    )
    p_result.add_argument("job_id")
    p_result.add_argument("--wait", action="store_true", help="block until the job finishes")
    p_result.add_argument("--timeout", type=float, default=600.0, help="--wait timeout in seconds")

    p_explain = sub.add_parser(
        "explain", parents=[obs_common],
        help="walk a result back to its runs and fits (lineage + diagnostics)",
    )
    p_explain.add_argument(
        "target",
        help="a job id (read from the local job store, or --url), or a path to a "
        "stored job record / --save-result JSON",
    )
    p_explain.add_argument(
        "--cache-dir", default=None,
        help="cache root holding the job store (default: $SCALTOOL_CACHE_DIR or .scaltool_cache)",
    )
    p_explain.add_argument(
        "--url", default=None,
        help="fall back to a running service at this URL when the job is not stored locally",
    )
    p_explain.add_argument(
        "--json", action="store_true", help="print the raw lineage/diagnostics as JSON"
    )

    p_doctor = sub.add_parser(
        "doctor", parents=[obs_common],
        help="re-validate a stored result's diagnostics (exit 1 on `suspect`)",
    )
    p_doctor.add_argument(
        "target",
        help="a job id (read from the local job store, or --url), or a path to a "
        "stored job record / --save-result JSON",
    )
    p_doctor.add_argument(
        "--cache-dir", default=None,
        help="cache root holding the job store (default: $SCALTOOL_CACHE_DIR or .scaltool_cache)",
    )
    p_doctor.add_argument(
        "--url", default=None,
        help="fall back to a running service at this URL when the job is not stored locally",
    )

    p_obs = sub.add_parser(
        "obs", help="observability queries: job traces, manifest hot spots"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_obs_trace = obs_sub.add_parser(
        "trace", parents=[client_common],
        help="render a service job's distributed span tree (critical path starred)",
    )
    p_obs_trace.add_argument("job_id")
    p_obs_trace.add_argument(
        "--json", action="store_true", help="print the raw spans as JSON instead of a tree"
    )
    p_obs_top = obs_sub.add_parser(
        "top", parents=[obs_common],
        help="hottest span paths and metric summaries from a --metrics-out manifest",
    )
    p_obs_top.add_argument("manifest", help="JSONL manifest written by --metrics-out")
    p_obs_top.add_argument(
        "--limit", type=int, default=10, metavar="N", help="span paths to show (default 10)"
    )
    p_obs_top.add_argument(
        "--sort", choices=("total", "self", "count"), default="total",
        help="rank spans by total time, self time (minus children), or count "
        "(ties always break name-then-path)",
    )
    p_obs_hot = obs_sub.add_parser(
        "hot", parents=[obs_common],
        help="render a saved line profile (scaltool profile --lines --profile-out)",
    )
    p_obs_hot.add_argument("profile", help="profile JSON written by --profile-out or /v1/profile")
    p_obs_hot.add_argument(
        "--limit", type=int, default=15, metavar="N", help="rows per table (default 15)"
    )
    p_obs_hot.add_argument(
        "--flame", default=None, metavar="PATH",
        help="also write the collapsed-stack flamegraph lines to PATH",
    )
    return parser


def _progress_printer(args):
    """The --verbose campaign progress renderer: `run 7/23 hydro2d n=8`."""
    if not getattr(args, "verbose", False):
        return None

    def render(i: int, total: int, rec) -> None:
        print(f"run {i}/{total} {rec.workload} {rec.role} n={rec.n_processors}", file=sys.stderr)

    return render


def _executor_for(args):
    """The engine executor the command asked for (serial unless --jobs > 1)."""
    return default_executor(getattr(args, "jobs", 1))


def _execute_request(args, kind: str, payload: dict):
    """Run one service-style request inline (the CLI fast path).

    This is the same handler the analysis service executes for a job of
    the same kind/payload, which is what keeps ``scaltool result`` output
    byte-identical to the direct CLI command.
    """
    from .service.requests import compile_request

    request = compile_request(kind, payload)
    result = request.execute(
        cache_root=args.cache_dir,
        executor=_executor_for(args),
        progress=_progress_printer(args),
    )
    save_path = getattr(args, "save_result", None)
    if save_path:
        import json as _json
        from pathlib import Path as _Path

        path = _Path(save_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n")
        print(f"result saved to {path}", file=sys.stderr)
    return result


def _campaign_for(args) -> tuple[CampaignData, object]:
    workload = make_workload(args.workload)
    s0 = args.s0 if args.s0 else workload.default_size()
    config = CampaignConfig(s0=s0, processor_counts=args.counts)
    campaign = cached_campaign(
        workload,
        config,
        cache_dir=args.cache_dir,
        progress=_progress_printer(args),
        executor=_executor_for(args),
    )
    return campaign, workload


def _load_stored_result(args) -> tuple[str, dict]:
    """Resolve an ``explain``/``doctor`` target to a stored result dict.

    ``target`` may be (tried in order): a path to a ``--save-result`` JSON
    file or a stored job record; a job id in the local job store under
    the cache root (works fully offline); a job id on a running service
    (only when ``--url`` is given).
    """
    import json as _json
    from pathlib import Path as _Path

    target = args.target
    path = _Path(target)
    if path.exists():
        try:
            doc = _json.loads(path.read_text())
        except (OSError, _json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read {path}: {exc}") from exc
        if not isinstance(doc, dict):
            raise ReproError(f"{path} does not hold a result object")
        if "state" in doc and "kind" in doc:  # a stored job record
            if doc.get("state") != "done" or not doc.get("result"):
                raise ReproError(
                    f"job record {path} is {doc.get('state')!r}; no result to inspect"
                )
            return f"job {doc.get('id', '?')} ({doc.get('kind', '?')})", doc["result"]
        if any(k in doc for k in ("output", "data", "lineage")):
            return str(path), doc
        raise ReproError(f"{path} is neither a job record nor a saved result")
    from .runner.engine import default_cache_root
    from .service.store import JobStore

    root = _Path(args.cache_dir) if args.cache_dir else default_cache_root()
    job = JobStore(root / "service" / "jobs").get(target)
    if job is not None:
        if job.state != "done" or not job.result:
            raise ReproError(f"job {target} is {job.state!r}; no result to inspect")
        return f"job {job.id} ({job.kind})", job.result
    if args.url:
        from .service.client import ServiceClient

        view = ServiceClient(args.url).result(target)
        if view.get("state") != "done" or not view.get("result"):
            raise ReproError(f"job {target} is {view.get('state')!r}; no result to inspect")
        return f"job {view['id']}", view["result"]
    raise ReproError(
        f"no stored job {target!r} under {root / 'service' / 'jobs'} "
        "(pass a file path, --cache-dir, or --url for a running service)"
    )


def _blame_groups(args) -> dict:
    groups: dict = {}
    for spec in getattr(args, "group", None) or []:
        name, _, pattern = spec.partition("=")
        if not pattern:
            raise ReproError(f"bad --group {spec!r}; expected NAME=PATTERN")
        groups[name] = pattern.strip("'\"")
    return groups


def _blame_stored(target: str, cache_dir: str | None):
    """Resolve a blame target held on disk: a stored job record, a
    ``--save-result`` JSON, or a job id in the local job store.

    Returns ``(label, kind, payload, result)`` — ``kind``/``payload`` are
    None for a bare saved result — or None when the target is neither.
    """
    import json as _json
    from pathlib import Path as _Path

    path = _Path(target)
    if path.is_file():
        try:
            doc = _json.loads(path.read_text())
        except (OSError, _json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read {path}: {exc}") from exc
        if not isinstance(doc, dict):
            raise ReproError(f"{path} does not hold a result object")
        if "state" in doc and "kind" in doc:  # a stored job record
            if doc.get("state") != "done" or not doc.get("result"):
                raise ReproError(f"job record {path} is {doc.get('state')!r}; nothing to blame")
            return str(path), doc["kind"], doc.get("payload") or {}, doc["result"]
        if any(k in doc for k in ("output", "data", "lineage")):
            return str(path), None, None, doc
        raise ReproError(f"{path} is neither a job record nor a saved result")
    from .runner.engine import default_cache_root
    from .service.store import JobStore

    root = _Path(cache_dir) if cache_dir else default_cache_root()
    job = JobStore(root / "service" / "jobs").get(target)
    if job is not None:
        if job.state != "done" or not job.result:
            raise ReproError(f"job {target} is {job.state!r}; nothing to blame")
        return f"job {job.id} ({job.kind})", job.kind, job.payload or {}, job.result
    return None


def _blame_payload_from_result(label: str, result: dict) -> dict:
    """Recover the campaign payload from a saved result's data + lineage."""
    data = result.get("data") or {}
    lineage = result.get("lineage") or {}
    specs = [e for e in lineage.get("specs", []) if e.get("role") == "app_base"]
    payload: dict = {}
    if data.get("workload"):
        payload["workload"] = data["workload"]
    elif specs:
        payload["workload"] = specs[0]["workload"]
    if specs:
        payload["s0"] = max(e["size_bytes"] for e in specs)
        payload["counts"] = sorted({e["n_processors"] for e in specs})
    elif data.get("processor_counts"):
        payload["counts"] = list(data["processor_counts"])
    missing = [k for k in ("workload", "s0", "counts") if not payload.get(k)]
    if missing:
        raise ReproError(
            f"{label} does not identify a campaign (missing {', '.join(missing)}); "
            "blame a workload name or a campaign directory instead"
        )
    return payload


def _blame_target_report(args, target: str) -> tuple[str, dict]:
    """Resolve a blame target to ``(rendered output, report dict)``.

    Tried in order: a saved campaign directory, a workload name, a stored
    job record / saved result / local job-store id, a job id on a running
    service (``--url``).
    """
    from pathlib import Path as _Path

    from .viz import render_blame

    groups = _blame_groups(args)
    path = _Path(target)
    if path.is_dir() and (path / "campaign.jsonl").exists():
        from .analysis import blame_campaign

        campaign = CampaignData.load(path)
        analysis = ScalTool(campaign).analyze()
        report = blame_campaign(analysis, campaign, groups=groups or None).to_dict()
        return render_blame(report) + "\n", report
    if target in available_workloads():
        result = _execute_request(
            args,
            "blame",
            {
                "workload": target,
                "s0": args.s0,
                "counts": list(args.counts),
                "groups": groups,
            },
        )
        return result.output, result.data["report"]
    stored = _blame_stored(target, args.cache_dir)
    if stored is not None:
        label, kind, payload, result = stored
        data = (result or {}).get("data") or {}
        if kind == "blame" and isinstance(data.get("report"), dict):
            report = data["report"]
            return (result.get("output") or render_blame(report) + "\n"), report
        if payload and all(k in payload for k in ("workload", "s0", "counts")):
            req_payload = {
                "workload": payload["workload"],
                "params": payload.get("params", {}),
                "s0": payload["s0"],
                "counts": payload["counts"],
            }
        else:
            req_payload = _blame_payload_from_result(label, result or {})
        req_payload["groups"] = groups
        derived = _execute_request(args, "blame", req_payload)
        return derived.output, derived.data["report"]
    if args.url:
        from .service.client import ServiceClient

        view = ServiceClient(args.url).blame(target)
        return view["output"], view["report"]
    raise ReproError(
        f"cannot resolve blame target {target!r}: not a workload name, a saved "
        "campaign directory, a stored result file, or a local job id "
        "(pass --cache-dir, or --url for a running service)"
    )


def _models_result(args):
    """Resolve a ``models`` target and run the action through the shared
    request handler (so CLI output stays byte-identical to a service job).

    Tried in order: a saved campaign directory (analysed inline, like
    ``blame``), a workload name, a speedup dataset file (.csv or
    ``scaltool-speedup-v1`` JSON), a stored job record / saved result /
    local job-store id.
    """
    import json as _json
    from pathlib import Path as _Path

    from .service.requests import RequestResult

    target = args.target
    payload: dict = {"action": args.action}
    if args.action == "predict":
        payload["to"] = list(args.to)

    path = _Path(target)
    if path.is_dir() and (path / "campaign.jsonl").exists():
        from .models import SpeedupDataset, run_action

        campaign = CampaignData.load(path)
        analysis = ScalTool(campaign).analyze()
        dataset = SpeedupDataset.from_campaign(campaign)
        output, data = run_action(args.action, dataset, analysis, to=payload.get("to"))
        result = RequestResult(output=output, data=data)
        save_path = getattr(args, "save_result", None)
        if save_path:
            out = _Path(save_path)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(_json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n")
            print(f"result saved to {out}", file=sys.stderr)
        return result

    if target in available_workloads():
        payload.update(
            {"workload": target, "s0": args.s0, "counts": list(args.counts)}
        )
        return _execute_request(args, "models", payload)

    if path.is_file():
        # A dataset file (CSV, or JSON carrying a points list) beats the
        # stored-result interpretations.
        is_dataset = True
        try:
            doc = _json.loads(path.read_text())
        except (OSError, _json.JSONDecodeError):
            pass  # CSV (or unreadable; the loader reports that properly)
        else:
            is_dataset = isinstance(doc, dict) and "points" in doc
        if is_dataset:
            from .models import SpeedupDataset

            payload["dataset"] = SpeedupDataset.load(path).to_dict()
            return _execute_request(args, "models", payload)

    stored = _blame_stored(target, args.cache_dir)
    if stored is not None:
        label, kind, job_payload, result = stored
        if job_payload and all(k in job_payload for k in ("workload", "s0", "counts")):
            campaign_payload = {
                "workload": job_payload["workload"],
                "params": job_payload.get("params", {}),
                "s0": job_payload["s0"],
                "counts": job_payload["counts"],
            }
        else:
            campaign_payload = _blame_payload_from_result(label, result or {})
        payload.update(campaign_payload)
        return _execute_request(args, "models", payload)

    raise ReproError(
        f"cannot resolve models target {target!r}: not a workload name, a saved "
        "campaign directory, a speedup dataset file, a stored result file, or "
        "a local job id (pass --cache-dir for the local job store)"
    )


def _axis_value(text: str):
    """Axis values parse as int, then float, then bare string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_axes(specs: list[str] | None, flag: str) -> dict:
    axes: dict = {}
    for spec in specs or []:
        name, _, values = spec.partition("=")
        if not name or not values:
            raise ReproError(f"bad {flag} {spec!r}; expected NAME=V1,V2,...")
        axes[name] = [_axis_value(v) for v in values.split(",")]
    return axes


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    verbose = getattr(args, "verbose", False)
    metrics_out = getattr(args, "metrics_out", None)
    configure_logging(verbose=verbose)
    # An obs session is live whenever its data has somewhere to go: a
    # metrics manifest, or the profile subcommand's report.
    session = None
    if metrics_out or args.command == "profile":
        session = obs_runtime.enable()
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`): not an error
        return 0
    finally:
        if session is not None:
            obs_runtime.disable()
            if metrics_out:
                path = export_jsonl(session, metrics_out, meta={"command": args.command})
                print(f"metrics manifest written to {path}", file=sys.stderr)


def _dispatch(args) -> int:
    if args.command == "list":
        for name in available_workloads():
            print(name)
        return 0

    if args.command == "run":
        workload = make_workload(args.workload)
        size = args.size if args.size else workload.default_size()
        record = run_experiment(workload, size, args.processors)
        meta = {
            "workload": record.workload,
            "size_bytes": record.size_bytes,
            "n_processors": record.n_processors,
        }
        print(format_report(record.counters, record.per_cpu, metadata=meta))
        return 0

    if args.command == "campaign":
        workload = make_workload(args.workload)
        s0 = args.s0 if args.s0 else workload.default_size()
        config = CampaignConfig(s0=s0, processor_counts=args.counts)
        data = ScalToolCampaign(workload, config, progress=lambda m: print(f"  {m}")).run(
            progress=_progress_printer(args), executor=_executor_for(args)
        )
        manifest = data.save(args.out)
        print(f"wrote {len(data.records)} runs to {manifest.parent}")
        if args.export_speedup:
            from .models import SpeedupDataset

            path = SpeedupDataset.from_campaign(data).save(args.export_speedup)
            print(f"wrote speedup curve to {path}")
        return 0

    if args.command == "analyze":
        if args.from_dir:
            campaign = CampaignData.load(args.from_dir)
            analysis = ScalTool(campaign).analyze()
            if args.markdown:
                from .core.report import export_markdown

                print(export_markdown(analysis))
            else:
                print(analysis.report())
            return 0
        result = _execute_request(
            args,
            "analyze",
            {
                "workload": args.workload,
                "s0": args.s0,
                "counts": list(args.counts),
                "markdown": args.markdown,
            },
        )
        sys.stdout.write(result.output)
        return 0

    if args.command == "segments":
        from .core.segments import analyze_segments, phase_names

        campaign, _ = _campaign_for(args)
        analysis = ScalTool(campaign).analyze()
        if args.group:
            groups = {}
            for spec in args.group:
                name, _, pattern = spec.partition("=")
                if not pattern:
                    raise ReproError(f"bad --group {spec!r}; expected NAME=PATTERN")
                groups[name] = pattern.strip("'\"")
        else:
            prefixes = sorted({name.split("_")[0] for name in phase_names(campaign)})
            groups = {p: f"{p}*" for p in prefixes}
        print(analyze_segments(analysis, campaign, groups).summary())
        return 0

    if args.command == "blame":
        import json as _json

        output, report = _blame_target_report(args, args.target)
        if args.against:
            from .analysis import BlameReport, diff_reports
            from .viz import render_blame_diff

            _, other = _blame_target_report(args, args.against)
            diff = diff_reports(BlameReport.from_dict(report), BlameReport.from_dict(other))
            if args.json:
                print(_json.dumps(diff, indent=2, sort_keys=True))
            else:
                print(render_blame_diff(diff))
            return 0
        if args.json:
            print(_json.dumps(report, indent=2, sort_keys=True))
        else:
            sys.stdout.write(output)
        return 0

    if args.command == "sharing":
        from .core.sharing import analyze_sharing

        campaign, _ = _campaign_for(args)
        analysis = ScalTool(campaign).analyze()
        sharing = analyze_sharing(analysis, campaign)
        print(format_table(sharing.rows(), title="event-31 decomposition (Section 6 extension)"))
        corrected = sharing.corrected_curves
        rows = [
            {
                "n": n,
                "Sync (raw)": analysis.curves.sync_cost[n],
                "Sync (corrected)": corrected.sync_cost[n],
                "Imb (raw)": analysis.curves.imb_cost[n],
                "Imb (corrected)": corrected.imb_cost[n],
            }
            for n in analysis.curves.processor_counts
        ]
        print()
        print(format_table(rows, title="sharing-corrected bottleneck costs"))
        return 0

    if args.command == "predict":
        result = _execute_request(
            args,
            "predict",
            {
                "workload": args.workload,
                "s0": args.s0,
                "counts": list(args.counts),
                "to": list(args.to),
            },
        )
        sys.stdout.write(result.output)
        return 0

    if args.command == "models":
        import json as _json

        result = _models_result(args)
        if args.json:
            print(_json.dumps(result.data, indent=2, sort_keys=True))
        else:
            sys.stdout.write(result.output)
        return 0

    if args.command == "balance":
        from .core.balance import analyze_balance

        campaign, _ = _campaign_for(args)
        print(analyze_balance(campaign).summary())
        return 0

    if args.command == "topology":
        from .machine.config import origin2000_scaled
        from .machine.latency import topology_survey

        points = topology_survey(
            origin2000_scaled(n_processors=1),
            processor_counts=args.counts,
            topologies=tuple(args.topologies.split(",")),
        )
        print(format_table([p.row() for p in points], title="tm(n) by topology"))
        return 0

    if args.command == "validate":
        campaign, _ = _campaign_for(args)
        analysis = ScalTool(campaign).analyze()
        print(validate_mp(analysis, campaign).summary())
        return 0

    if args.command == "whatif":
        result = _execute_request(
            args,
            "whatif",
            {
                "workload": args.workload,
                "s0": args.s0,
                "counts": list(args.counts),
                "t2": args.t2,
                "tm": args.tm,
                "tsyn": args.tsyn,
                "cpi0": args.cpi0,
                "l2": args.l2,
            },
        )
        sys.stdout.write(result.output)
        return 0

    if args.command == "sweep":
        result = _execute_request(
            args,
            "sweep",
            {
                "workload": args.workload,
                "size": args.size,
                "n": args.processors,
                "workload_axes": _parse_axes(args.workload_axis, "--workload-axis"),
                "machine_axes": _parse_axes(args.machine_axis, "--machine-axis"),
                "metrics": args.metric or ["cpi"],
            },
        )
        sys.stdout.write(result.output)
        return 0

    if args.command == "profile":
        from .obs.profile import profile_workload

        result = profile_workload(
            args.workload,
            s0=args.s0,
            processor_counts=args.counts,
            run_analysis=not args.no_analysis,
            progress=_progress_printer(args),
            executor=_executor_for(args),
            line_profile=args.lines,
            sample_interval=args.sample_interval / 1e3,
            sample_memory=args.memory,
        )
        meta = {
            "workload": args.workload,
            "counts": list(args.counts),
            "runs": len(result.campaign.records),
        }
        print(format_profile(result.session, meta=meta))
        if result.line_profile is not None:
            import json as _json
            from pathlib import Path as _Path

            from .viz.sampler_view import render_hot_profile

            profile = result.line_profile
            print(render_hot_profile(profile.to_dict()))
            if args.flame:
                _Path(args.flame).write_text("\n".join(profile.folded()) + "\n")
                print(f"flamegraph stacks written to {args.flame}")
            if args.profile_out:
                payload = {
                    "kind": "hotpath",
                    "workload": args.workload,
                    "s0": args.s0,
                    "counts": list(args.counts),
                    "jobs": args.jobs,
                    "profile": profile.to_dict(),
                }
                _Path(args.profile_out).write_text(
                    _json.dumps(payload, indent=2, sort_keys=True) + "\n"
                )
                print(f"line profile written to {args.profile_out}")
        return 0

    if args.command == "serve":
        from .service import ServiceConfig

        config = ServiceConfig(
            cache_dir=args.cache_dir,
            jobs=args.jobs,
            workers=args.concurrency,
            max_queue=args.max_queue,
            job_timeout=args.job_timeout,
            claim_ttl=args.claim_ttl,
        )
        if args.workers >= 2:
            from .service.dispatcher import serve_dispatcher

            server = serve_dispatcher(
                config, worker_count=args.workers, host=args.host, port=args.port
            )
            print(
                f"scaltool dispatcher listening on {server.url}"
                f" ({args.workers} worker processes)",
                file=sys.stderr,
            )
        else:
            from .service.http import serve

            server = serve(config, host=args.host, port=args.port)
            print(f"scaltool service listening on {server.url}", file=sys.stderr)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("draining and shutting down ...", file=sys.stderr)
        return 0

    if args.command == "submit":
        from .service.client import ServiceClient

        payload: dict = {"workload": args.workload}
        if args.s0 is not None:
            payload["s0"] = args.s0
        if args.size is not None:
            payload["size"] = args.size
        if args.counts is not None:
            payload["counts"] = list(args.counts)
        if args.processors is not None:
            payload["n"] = args.processors
        if args.to is not None:
            payload["to"] = list(args.to)
        for spec in args.arg or []:
            name, _, value = spec.partition("=")
            if not name or not value:
                raise ReproError(f"bad --arg {spec!r}; expected NAME=VALUE")
            if value in ("true", "false"):
                payload[name] = value == "true"
            else:
                payload[name] = _axis_value(value)
        client = ServiceClient(args.url)
        submitted = client.submit(args.kind, payload, priority=args.priority)
        dedup = " (deduplicated)" if submitted.get("deduped") else ""
        print(f"job {submitted['id']} {submitted['state']}{dedup}", file=sys.stderr)
        if not args.wait:
            print(submitted["id"])
            return 0
        view = client.wait(submitted["id"], timeout=args.timeout)
        if view["state"] != "done":
            raise ReproError(f"job {view['id']} failed: {view.get('error')}")
        sys.stdout.write(view["result"]["output"])
        return 0

    if args.command == "status":
        import json as _json

        from .service.client import ServiceClient

        print(_json.dumps(ServiceClient(args.url).status(args.job_id), indent=2, sort_keys=True))
        return 0

    if args.command == "result":
        from .service.client import ServiceClient

        client = ServiceClient(args.url)
        if args.wait:
            view = client.wait(args.job_id, timeout=args.timeout)
        else:
            view = client.result(args.job_id)
        if view["state"] == "failed":
            raise ReproError(f"job {view['id']} failed: {view.get('error')}")
        if view["state"] != "done":
            print(f"job {view['id']} is {view['state']}", file=sys.stderr)
            return 2
        sys.stdout.write(view["result"]["output"])
        return 0

    if args.command == "explain":
        import json as _json

        label, result = _load_stored_result(args)
        lineage = result.get("lineage")
        diagnostics = (result.get("data") or {}).get("diagnostics")
        if args.json:
            print(
                _json.dumps(
                    {"lineage": lineage, "diagnostics": diagnostics},
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        from .viz.diagnostics_view import render_diagnostics, render_lineage

        print(f"# {label}")
        if lineage:
            print(render_lineage(lineage))
        else:
            print("no lineage recorded (result predates lineage collection)")
        if diagnostics:
            print()
            print(render_diagnostics(diagnostics))
        return 0

    if args.command == "doctor":
        from .obs.diagnostics import GRADE_SUSPECT, revalidate, worst_grade

        label, result = _load_stored_result(args)
        diagnostics = (result.get("data") or {}).get("diagnostics")
        if not diagnostics:
            print(
                f"doctor: {label}: no diagnostics stored with this result; "
                "cannot vouch for its numbers",
                file=sys.stderr,
            )
            return 1
        rows, regraded = [], []
        for stored in diagnostics.get("checks", []):
            fresh = revalidate(stored)
            regraded.append(fresh)
            rows.append(
                {
                    "check": fresh.name,
                    "eq": fresh.equation,
                    "stored": stored.get("grade", "?"),
                    "revalidated": fresh.grade,
                    "agrees": "yes" if fresh.grade == stored.get("grade") else "NO",
                }
            )
        health = worst_grade(c.grade for c in regraded)
        print(f"# {label}")
        print(format_table(rows))
        flags = [f"  {c.name}: {f}" for c in regraded for f in c.flags]
        if flags:
            print("findings:")
            print("\n".join(flags))
        print(f"health: {health}")
        if health == GRADE_SUSPECT:
            print(
                "verdict: SUSPECT — re-measure before trusting these numbers",
                file=sys.stderr,
            )
            return 1
        print("verdict: ok" if health == "ok" else "verdict: usable with caution")
        return 0

    if args.command == "obs":
        if args.obs_command == "trace":
            import json as _json

            from .service.client import ServiceClient
            from .viz.trace_view import render_trace

            view = ServiceClient(args.url).trace(args.job_id)
            if args.json:
                print(_json.dumps(view, indent=2, sort_keys=True))
                return 0
            state = "complete" if view.get("complete") else "in flight"
            print(f"# trace {view['trace_id']} — job {view['job']} ({state})")
            sys.stdout.write(render_trace(view["spans"]))
            return 0
        if args.obs_command == "top":
            from .obs.export import summarize_manifest

            print(summarize_manifest(args.manifest, limit=args.limit, sort=args.sort))
            return 0
        if args.obs_command == "hot":
            import json as _json
            from pathlib import Path as _Path

            from .obs.sampler import SampleProfile
            from .viz.sampler_view import render_hot_profile

            data = _json.loads(_Path(args.profile).read_text())
            # Accept the CLI artifact ({"kind": "hotpath", "profile": ...}),
            # the service response ({"profile": ...}), or a bare profile.
            profile_dict = data.get("profile", data) if isinstance(data, dict) else data
            print(render_hot_profile(profile_dict, limit=args.limit))
            if args.flame:
                folded = SampleProfile.from_dict(profile_dict).folded()
                _Path(args.flame).write_text("\n".join(folded) + "\n")
                print(f"flamegraph stacks written to {args.flame}")
            return 0
        raise ReproError(f"unknown obs command {args.obs_command!r}")  # pragma: no cover

    if args.command == "plan":
        rows = [
            {"methodology": label, "runs": runs, "processors": procs, "files": files}
            for label, runs, procs, files in table1_rows(args.n)
        ]
        print(format_table(rows, title=f"Table 1 (n = {args.n})"))
        print()
        counts = tuple(2**i for i in range(args.n))
        print(table3_matrix(args.s0, counts).format())
        return 0

    raise ReproError(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
