"""Figure 3: removing the effects of insufficient caching space.

(a) the uniprocessor L2 hit rate as the data set shrinks — low on the
left (conflict misses), rising to the compulsory plateau;
(b) the estimated infinite-L2 hit rate L2hitr_inf(s0, n) vs the measured
multiprocessor hit rate — starting above it (conflicts) and converging at
high n while coherence misses pull it down.
"""

import pytest

from repro.core.cache_analysis import compulsory_miss_rate, hit_rate_curve
from repro.viz.ascii_chart import ascii_chart
from repro.viz.tables import format_table


def test_fig3a_hit_rate_vs_size(benchmark, emit, t3dheat_campaign):
    uniproc = t3dheat_campaign.uniprocessor_runs()
    curve = benchmark(hit_rate_curve, uniproc)
    compulsory = compulsory_miss_rate(uniproc)

    rows = [{"size (KB)": s / 1024, "L2hitr(s,1)": hr} for s, hr in curve]
    text = format_table(rows, title="Figure 3-(a): uniprocessor L2 hit rate vs data-set size")
    text += f"\ncompulsory miss rate (plateau): {compulsory:.4f}"
    emit("fig3a_hitrate_vs_size", text)

    hit = dict(curve)
    sizes = sorted(hit)
    # left side (large data sets): low hit rate from conflict misses
    assert hit[sizes[-1]] < 0.5
    # plateau: some small size reaches near the maximum
    assert max(hit.values()) > 0.85
    # the maximum is NOT at the largest size
    assert max(hit, key=hit.get) < sizes[-1]


def test_fig3b_l2hitr_inf_vs_n(benchmark, emit, t3dheat_analysis):
    cache = t3dheat_analysis.cache

    def series():
        counts = sorted(cache.measured_l2hitr_by_n)
        return {
            "L2hitr_inf(s0,n)": [(n, cache.l2hitr_inf(n)) for n in counts],
            "L2hitr(s0,n) measured": [(n, cache.measured_l2hitr_by_n[n]) for n in counts],
        }

    data = benchmark(series)
    chart = ascii_chart(data, title="Figure 3-(b): infinite-L2 vs measured hit rate",
                        y_label="hit rate")
    rows = [
        {
            "n": n,
            "measured": cache.measured_l2hitr_by_n[n],
            "Coh(s0,n)": cache.coherence_by_n[n],
            "L2hitr_inf": cache.l2hitr_inf(n),
            "conflict": cache.conflict_rate(n),
        }
        for n in sorted(cache.measured_l2hitr_by_n)
    ]
    emit("fig3b_l2hitr_inf", chart + "\n\n" + format_table(rows))

    counts = sorted(cache.measured_l2hitr_by_n)
    # at n=1 the estimate sits well above the measurement (conflicts)
    assert cache.l2hitr_inf(1) > cache.measured_l2hitr_by_n[1] + 0.2
    # "in the limit, the curves converge"
    gap_first = cache.l2hitr_inf(counts[0]) - cache.measured_l2hitr_by_n[counts[0]]
    gap_last = cache.l2hitr_inf(counts[-1]) - cache.measured_l2hitr_by_n[counts[-1]]
    assert gap_last < 0.25 * gap_first
