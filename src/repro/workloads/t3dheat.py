"""T3dheat: conjugate-gradient PDE solver model (paper Table 4, Section 4.1).

The real T3dheat (Los Alamos) is a PCF-directive PDE solver using conjugate
gradient with explicit barriers, a 40 MB data set, good load balance,
excellent speedup to 16 processors and saturation beyond.  The paper's
diagnosis: the *only* reason for the good low-end speedup is that the data
set does not fit the aggregate caches until ~10 processors (40 MB / 4 MB
L2) — conflict misses nearly double the uniprocessor execution time and
vanish by 8 processors — and past that point synchronization cost (many
explicit PCF barriers per CG step, with fetchop serialization growing with
n) reaches ~75% of all cycles at 30 processors.

This model reproduces that structure:

* a banded sparse matrix (~70% of the footprint) swept once per outer
  iteration (the SpMV), plus solution/direction/residual vectors; sweeps
  re-reference each cache line ``rpb_matrix`` times (word-granular spatial
  locality), which sets the conflict-miss overhead ratio at n=1;
* SpMV gathers into the shared x vector — mostly the processor's own
  slice (banded matrix) with a small ``gather_spread`` fraction going
  global, giving the mild read sharing a real CG has;
* every sweep is emitted as several barrier-separated parallel loops
  (``spmv_splits`` / ``dot_splits``), PCF style, plus ``inner_steps``
  dot-product/daxpy vector steps per outer iteration — the barrier count
  per unit of work is what makes synchronization dominate at scale;
* balanced partitions (block scheduling), matching the reported "good
  load balance".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..errors import WorkloadError
from ..trace.events import Phase, Segment, make_segment
from ..trace.generators import gather_sweep, sweep
from ..trace.synth import concat_traces, split_trace
from ..units import MB
from .base import Workload

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.system import DsmMachine

__all__ = ["T3dheat"]


class T3dheat(Workload):
    """CG PDE solver: barrier-heavy, balanced, cache-hungry."""

    name = "t3dheat"
    cpi0 = 1.3
    m_frac = 0.35
    paper_footprint_bytes = 40 * MB  # measured by ssusage in the paper
    parallel_model = "PCF directives with explicit barriers"
    source = "Los Alamos National Laboratory"
    what_it_does = "PDE solver using conjugate gradient"

    def __init__(
        self,
        iters: int = 3,
        inner_steps: int = 20,
        matrix_frac: float = 0.70,
        rpb_matrix: int = 8,
        rpb_vec: int = 6,
        spmv_splits: int = 3,
        dot_splits: int = 8,
        gather_spread: float = 0.04,
        seed: int = 1234,
    ) -> None:
        super().__init__(iters=iters, seed=seed)
        if not (0.1 <= matrix_frac <= 0.9):
            raise WorkloadError("matrix_frac must be in [0.1, 0.9]")
        if inner_steps < 1:
            raise WorkloadError("inner_steps must be >= 1")
        if not (0.0 <= gather_spread <= 1.0):
            raise WorkloadError("gather_spread must be in [0, 1]")
        if spmv_splits < 1 or dot_splits < 1:
            raise WorkloadError("splits must be >= 1")
        self.inner_steps = inner_steps
        self.matrix_frac = matrix_frac
        self.rpb_matrix = rpb_matrix
        self.rpb_vec = rpb_vec
        self.spmv_splits = spmv_splits
        self.dot_splits = dot_splits
        self.gather_spread = gather_spread

    def describe_params(self) -> dict:
        return {
            "iters": self.iters,
            "inner_steps": self.inner_steps,
            "matrix_frac": self.matrix_frac,
            "rpb_matrix": self.rpb_matrix,
            "rpb_vec": self.rpb_vec,
            "spmv_splits": self.spmv_splits,
            "dot_splits": self.dot_splits,
            "gather_spread": self.gather_spread,
            "seed": self.seed,
        }

    def build(self, machine: "DsmMachine", size_bytes: int) -> Iterator[Phase]:
        nb = self.blocks_for(machine, size_bytes)
        n = machine.n_processors
        nb_matrix = max(n, int(nb * self.matrix_frac))
        nb_vec = max(n, (nb - nb_matrix) // 3)
        matrix = machine.allocator.alloc("matrix", nb_matrix)
        x = machine.allocator.alloc("x", nb_vec)
        p = machine.allocator.alloc("p", nb_vec)
        r = machine.allocator.alloc("r", nb_vec)
        vectors = [x, p, r]

        # Parallel first-touch initialisation: each cpu writes its slices.
        init_segs: list[Segment | None] = []
        for cpu in range(n):
            frags = [
                sweep(reg.slice_for(cpu, n), refs_per_block=1, write_frac=1.0,
                      rng=np.random.default_rng(self.seed + cpu))
                for reg in (matrix, x, p, r)
            ]
            a, w = concat_traces(*frags)
            init_segs.append(make_segment(a, w, m_frac=self.m_frac))
        yield Phase(name="init", segments=init_segs, barrier=True)

        for outer in range(self.iters):
            # SpMV: sweep own matrix slice, gather from x (mostly the local
            # band); emitted as spmv_splits barrier-separated loops.
            per_cpu_chunks: list[list] = []
            for cpu in range(n):
                rng = np.random.default_rng(self.seed * 7919 + outer * 131 + cpu)
                own_rows = matrix.slice_for(cpu, n)
                local_x = x.slice_for(cpu, n)
                a_loc, w_loc = gather_sweep(
                    own_rows,
                    table=local_x,
                    gathers_per_row=1,
                    refs_per_block=self.rpb_matrix,
                    write_frac=0.25,
                    rng=rng,
                )
                if self.gather_spread > 0.0:
                    # A slice of the gathers goes anywhere in x: the
                    # off-band matrix entries (read sharing).
                    n_global = int(len(a_loc) * self.gather_spread * 0.1)
                    if n_global:
                        idx = rng.integers(0, len(a_loc), size=n_global)
                        a_loc = a_loc.copy()
                        w_loc = w_loc.copy()
                        a_loc[idx] = rng.integers(x.base_block, x.end_block, size=n_global)
                        w_loc[idx] = False
                per_cpu_chunks.append(split_trace((a_loc, w_loc), self.spmv_splits))
            for part in range(self.spmv_splits):
                segs: list[Segment | None] = [
                    make_segment(per_cpu_chunks[cpu][part][0],
                                 per_cpu_chunks[cpu][part][1],
                                 m_frac=self.m_frac)
                    for cpu in range(n)
                ]
                yield Phase(name=f"spmv_{outer}_{part}", segments=segs, barrier=True)

            # Inner CG vector steps: dot products and daxpy updates, each a
            # group of dot_splits explicit PCF barrier loops.
            for step in range(self.inner_steps):
                vec = vectors[step % len(vectors)]
                write_frac = 0.0 if step % 2 == 0 else 0.5  # dot vs daxpy
                per_cpu_chunks = []
                for cpu in range(n):
                    rng = np.random.default_rng(self.seed * 104729 + outer * 17 + step * 7 + cpu)
                    a, w = sweep(
                        vec.slice_for(cpu, n),
                        refs_per_block=self.rpb_vec,
                        write_frac=write_frac,
                        rng=rng,
                    )
                    per_cpu_chunks.append(split_trace((a, w), self.dot_splits))
                for part in range(self.dot_splits):
                    segs = [
                        make_segment(per_cpu_chunks[cpu][part][0],
                                     per_cpu_chunks[cpu][part][1],
                                     m_frac=self.m_frac)
                        for cpu in range(n)
                    ]
                    yield Phase(name=f"cg_{outer}_{step}_{part}", segments=segs, barrier=True)
