"""End-to-end flows: quick_analysis, file round trips, tool interplay."""

import pytest

from repro import quick_analysis
from repro.core import ScalTool, WhatIf
from repro.runner.campaign import CampaignData
from repro.tools.perfex import multiplex_counters, parse_report


class TestQuickAnalysis:
    def test_synthetic_end_to_end(self, tmp_path):
        analysis, campaign = quick_analysis(
            "synthetic",
            processor_counts=(1, 2, 4),
            s0=256 * 1024,
            cache_dir=str(tmp_path),
            iters=2,
        )
        assert analysis.workload == "synthetic"
        assert analysis.curves.processor_counts == [1, 2, 4]
        assert "Scal-Tool analysis" in analysis.report()


class TestFileRoundTrip:
    def test_campaign_survives_disk(self, t3dheat_campaign, tmp_path):
        t3dheat_campaign.save(tmp_path / "t3")
        reloaded = CampaignData.load(tmp_path / "t3")
        a1 = ScalTool(t3dheat_campaign).analyze()
        a2 = ScalTool(reloaded).analyze()
        for n in a1.curves.processor_counts:
            assert a1.curves.base[n] == pytest.approx(a2.curves.base[n], rel=1e-6)
            assert a1.curves.mp_cost(n) == pytest.approx(a2.curves.mp_cost(n), rel=1e-4)

    def test_perfex_files_parse_and_match(self, t3dheat_campaign, tmp_path):
        t3dheat_campaign.save(tmp_path / "t3")
        files = sorted((tmp_path / "t3").glob("*.perfex"))
        assert len(files) == len(t3dheat_campaign.records)
        meta, totals, per_cpu = parse_report(files[0].read_text())
        rec = t3dheat_campaign.records[0]
        assert meta["n_processors"] == rec.n_processors
        assert totals.cycles == pytest.approx(rec.counters.cycles, abs=1.0)
        assert len(per_cpu) == rec.n_processors


class TestCounterFidelity:
    def test_multiplexed_counters_keep_analysis_sane(self, t3dheat_campaign):
        """perfex -a style multiplexing perturbs counters but not conclusions."""
        rec = t3dheat_campaign.base_runs()[32]
        exact = rec.counters
        approx = multiplex_counters(rec.phase_counters, events_per_slice=2)
        # events spread evenly over phases multiplex accurately ...
        assert approx.cycles == pytest.approx(exact.cycles, rel=0.25)
        assert approx.graduated_instructions == pytest.approx(
            exact.graduated_instructions, rel=0.25
        )

    def test_multiplexing_hazard_on_bursty_events(self, t3dheat_campaign):
        """... but bursty events (cold misses live in the init phase) can be
        wildly mis-sampled — the documented hazard of time-multiplexed
        counters, and why the campaign uses direct counting per run."""
        rec = t3dheat_campaign.base_runs()[32]
        exact = rec.counters
        errors = []
        for seed in range(4):
            approx = multiplex_counters(rec.phase_counters, events_per_slice=2, seed=seed)
            assert approx.l2_misses >= 0
            errors.append(abs(approx.l2_misses - exact.l2_misses) / exact.l2_misses)
        assert max(errors) > 0.25  # at least one alignment misses the burst


class TestWhatIfRealistic:
    def test_l2_doubling_kills_t3dheat_conflicts(self, t3dheat_campaign):
        """Section 2.6's motivating example: estimate doubling the L2."""
        analysis = ScalTool(t3dheat_campaign).analyze()
        whatif = WhatIf(analysis, t3dheat_campaign)
        # T3dheat at n=1 is conflict-bound: an 8x L2 should save real time
        pred = whatif.scale_l2(8.0)
        assert pred.predicted[1] < 0.85 * pred.baseline[1]
        # at n=32 conflicts are already gone, so the saving is negligible
        assert pred.predicted[32] > 0.95 * pred.baseline[32]

    def test_sync_hardware_matters_most_at_scale(self, t3dheat_campaign):
        analysis = ScalTool(t3dheat_campaign).analyze()
        whatif = WhatIf(analysis, t3dheat_campaign)
        pred = whatif.scale_parameters(tsyn_factor=0.25)
        rel_saving_32 = 1.0 - pred.predicted[32] / pred.baseline[32]
        rel_saving_1 = 1.0 - pred.predicted[1] / pred.baseline[1]
        assert rel_saving_32 > rel_saving_1
