"""Scalability prediction at unmeasured processor counts.

The paper's model isolates the per-count costs; this extension fits each
isolated component's trend and extrapolates the whole decomposition —
answering "what would 64 or 128 processors look like?" from the same 11
runs, in the spirit of Section 2.6's hypothetical-machine experiments.

Per component the fit is power-law (log-log linear):

* **useful** (base − L2Lim − Sync − Imb): nearly flat, drifting up with
  tm(n);
* **L2Lim**: decays as partitions fit the aggregate cache; once a measured
  count reaches zero, larger counts are pinned at zero;
* **Sync**: grows superlinearly (n arrivals x n-deep fetchop queue);
* **Imb**: grows with n (more processors waiting on the critical path).

Accumulated cycles are the component sum; the wall-clock speedup uses the
post-barrier identity wall(n) = accumulated(n) / n.  A leave-one-out
validation quantifies the extrapolation error on the measured counts
themselves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import InsufficientDataError
from .bottlenecks import BottleneckCurves
from .scaltool import ScalToolAnalysis

__all__ = ["ComponentFit", "ScalabilityPredictor", "predict_speedups"]

COMPONENTS = ("useful", "l2lim", "sync", "imb")


@dataclass(frozen=True)
class ComponentFit:
    """A power-law fit value = exp(intercept) * n**slope."""

    component: str
    intercept: float
    slope: float
    zero_from: int | None = None  # counts >= this measured as zero

    def value(self, n: int) -> float:
        if self.zero_from is not None and n >= self.zero_from:
            return 0.0
        return math.exp(self.intercept) * n**self.slope


def _component_points(curves: BottleneckCurves) -> dict[str, list[tuple[int, float]]]:
    pts: dict[str, list[tuple[int, float]]] = {c: [] for c in COMPONENTS}
    for n in curves.processor_counts:
        pts["useful"].append((n, curves.base_minus_l2lim_mp[n]))
        pts["l2lim"].append((n, curves.l2lim_cost[n]))
        pts["sync"].append((n, curves.sync_cost[n]))
        pts["imb"].append((n, curves.imb_cost[n]))
    return pts


def _fit(component: str, points: list[tuple[int, float]]) -> ComponentFit:
    floor = max((v for _, v in points), default=0.0) * 1e-6
    positive = [(n, v) for n, v in points if v > floor]
    zero_from = None
    if component == "l2lim":
        zeros = [n for n, v in points if v <= floor]
        if zeros:
            zero_from = min(zeros)
            positive = [(n, v) for n, v in positive if n < zero_from]
    if not positive:
        return ComponentFit(component, intercept=-math.inf, slope=0.0, zero_from=zero_from or 1)
    if len(positive) == 1:
        n0, v0 = positive[0]
        return ComponentFit(component, intercept=math.log(v0), slope=0.0, zero_from=zero_from)
    xs = np.log([n for n, _ in positive])
    ys = np.log([v for _, v in positive])
    slope, intercept = np.polyfit(xs, ys, 1)
    return ComponentFit(component, intercept=float(intercept), slope=float(slope), zero_from=zero_from)


class ScalabilityPredictor:
    """Fits the component trends of one analysis and extrapolates them."""

    def __init__(self, analysis: ScalToolAnalysis) -> None:
        self.analysis = analysis
        counts = analysis.curves.processor_counts
        if len(counts) < 3:
            raise InsufficientDataError(
                f"need >= 3 measured processor counts to fit trends, have {counts}"
            )
        self.measured_counts = counts
        self.fits = {
            name: _fit(name, pts) for name, pts in _component_points(analysis.curves).items()
        }
        self._wall1 = analysis.curves.wall_cycles[counts[0]] * counts[0]

    # -- prediction ------------------------------------------------------------------

    def predict_components(self, n: int) -> dict[str, float]:
        if n < 1:
            raise InsufficientDataError("n must be >= 1")
        out = {name: max(0.0, fit.value(n)) for name, fit in self.fits.items()}
        if n == 1:
            out["sync"] = min(out["sync"], 0.02 * out["useful"])
            out["imb"] = 0.0
        return out

    def predict_accumulated(self, n: int) -> float:
        """Predicted accumulated cycles over all processors at ``n``."""
        return sum(self.predict_components(n).values())

    def predict_wall(self, n: int) -> float:
        return self.predict_accumulated(n) / n

    def predict_speedup(self, n: int) -> float:
        """Predicted wall-clock speedup over the measured 1-processor run."""
        base_n = self.measured_counts[0]
        base_wall = self.analysis.curves.wall_cycles[base_n]
        return base_wall / self.predict_wall(n)

    def saturation_count(self, max_n: int = 4096) -> int:
        """First power of two where adding processors stops helping."""
        best_n, best = 1, self.predict_speedup(1)
        n = 2
        while n <= max_n:
            s = self.predict_speedup(n)
            if s <= best:
                return best_n
            best_n, best = n, s
            n *= 2
        return best_n

    # -- validation -------------------------------------------------------------------

    def leave_one_out(self) -> list[dict]:
        """Refit without each interior measured count and predict it."""
        rows = []
        curves = self.analysis.curves
        for held in self.measured_counts[1:-1]:
            kept_pts = {
                name: [(n, v) for n, v in pts if n != held]
                for name, pts in _component_points(curves).items()
            }
            fits = {name: _fit(name, pts) for name, pts in kept_pts.items()}
            predicted = sum(max(0.0, f.value(held)) for f in fits.values())
            actual = curves.base[held]
            rows.append(
                {
                    "n": held,
                    "predicted": predicted,
                    "actual": actual,
                    "error": abs(predicted - actual) / actual,
                }
            )
        return rows

    def rows(self, counts: list[int]) -> list[dict]:
        out = []
        measured_speedups = dict(self.analysis.curves.speedups())
        for n in counts:
            comp = self.predict_components(n)
            out.append(
                {
                    "n": n,
                    "measured speedup": measured_speedups.get(n, ""),
                    "predicted speedup": self.predict_speedup(n),
                    "useful": comp["useful"],
                    "L2Lim": comp["l2lim"],
                    "Sync": comp["sync"],
                    "Imb": comp["imb"],
                }
            )
        return out


def predict_speedups(analysis: ScalToolAnalysis, counts: list[int]) -> list[dict]:
    """Convenience wrapper: fitted predictions for ``counts``."""
    return ScalabilityPredictor(analysis).rows(counts)
