"""The CPI equations (Eqs. 1, 5-8)."""

import pytest

from repro.errors import EstimationError
from repro.core.model import (
    CpiParameters,
    MemoryRates,
    cpi_from_rates,
    cpi_linear,
    rates_to_frequencies,
    solve_tm,
)
from repro.machine.counters import CounterSet


class TestRates:
    def test_bounds_checked(self):
        with pytest.raises(EstimationError):
            MemoryRates(1.2, 0.5, 0.3)
        with pytest.raises(EstimationError):
            MemoryRates(0.5, -0.1, 0.3)
        with pytest.raises(EstimationError):
            MemoryRates(0.5, 0.5, 1.2)

    def test_from_counters(self):
        c = CounterSet(
            graduated_instructions=1000,
            graduated_loads=300,
            graduated_stores=100,
            l1_data_misses=40,
            l2_misses=10,
        )
        r = MemoryRates.from_counters(c)
        assert r.m_frac == pytest.approx(0.4)
        assert r.l1_hit_rate == pytest.approx(0.9)
        assert r.l2_hit_rate == pytest.approx(0.75)

    def test_clamped(self):
        r = MemoryRates(1.0, 0.0, 1.0).clamped()
        assert 0 <= r.l1_hit_rate <= 1


class TestEquations:
    def test_eq1(self):
        assert cpi_linear(1.0, 0.02, 0.01, 10.0, 100.0) == pytest.approx(1.0 + 0.2 + 1.0)

    def test_eq6_eq7(self):
        r = MemoryRates(l1_hit_rate=0.9, l2_hit_rate=0.75, m_frac=0.4)
        h2, hm = rates_to_frequencies(r)
        assert h2 == pytest.approx(0.1 * 0.4 * 0.75)
        assert hm == pytest.approx(0.1 * 0.4 * 0.25)

    def test_eq8_consistent_with_eq1(self):
        r = MemoryRates(0.85, 0.6, 0.35)
        h2, hm = rates_to_frequencies(r)
        direct = cpi_linear(1.2, h2, hm, 12.0, 80.0)
        via_rates = cpi_from_rates(1.2, 12.0, 80.0, r)
        assert direct == pytest.approx(via_rates)

    def test_perfect_hits_give_cpi0(self):
        r = MemoryRates(1.0, 1.0, 0.4)
        assert cpi_from_rates(1.3, 10, 100, r) == pytest.approx(1.3)

    def test_solve_tm_inverts_eq1(self):
        cpi = cpi_linear(1.1, 0.03, 0.008, 9.0, 70.0)
        assert solve_tm(cpi, 1.1, 0.03, 0.008, 9.0) == pytest.approx(70.0)

    def test_solve_tm_rejects_no_misses(self):
        with pytest.raises(EstimationError):
            solve_tm(1.5, 1.0, 0.02, 0.0, 10.0)


class TestParameters:
    def test_tm_lookup(self):
        p = CpiParameters(cpi0=1.0, t2=10.0, tm_by_n={1: 60.0, 4: 80.0})
        assert p.tm(4) == 80.0

    def test_missing_tm_raises(self):
        p = CpiParameters(cpi0=1.0, t2=10.0, tm_by_n={1: 60.0})
        with pytest.raises(EstimationError):
            p.tm(16)
