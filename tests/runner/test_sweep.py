"""Parameter-sweep harness."""

import pytest

from repro.errors import ConfigError
from repro.obs import runtime as obs
from repro.runner.engine import ParallelExecutor, RunCache
from repro.runner.sweep import ParameterSweep, sweep_grid

from ..conftest import small_synthetic, tiny_machine_config
from repro.workloads import SyntheticWorkload


class TestGrid:
    def test_cartesian_product(self):
        grid = sweep_grid(a=[1, 2], b=["x", "y", "z"])
        assert len(grid) == 6
        assert {"a": 1, "b": "z"} in grid

    def test_empty_axes(self):
        assert sweep_grid() == [{}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError):
            sweep_grid(a=[])

    def test_scalar_axis_rejected(self):
        with pytest.raises(ConfigError):
            sweep_grid(a=3)


class TestSweep:
    def make(self, **kw):
        defaults = dict(
            base_workload=lambda **p: SyntheticWorkload(iters=1, refs_per_block=3, **p),
            size=8 * 1024,
            n_processors=2,
            base_machine=tiny_machine_config(n_processors=2),
        )
        defaults.update(kw)
        return ParameterSweep(**defaults)

    def test_points_cover_both_grids(self):
        sweep = self.make(
            workload_grid={"sharing_frac": [0.0, 0.1]},
            machine_grid={"protocol": ["mesi", "msi"]},
        )
        assert len(sweep.points()) == 4

    def test_run_produces_metric_rows(self):
        sweep = self.make(workload_grid={"sharing_frac": [0.0, 0.1]})
        rows = sweep.run(metrics={"cycles": lambda r: r.counters.cycles})
        assert len(rows) == 2
        assert all("cycles" in row and row["cycles"] > 0 for row in rows)
        assert rows[0]["sharing_frac"] == 0.0

    def test_machine_axis_applied(self):
        sweep = self.make(machine_grid={"protocol": ["mesi", "msi"]})
        rows = sweep.run(
            metrics={"e31": lambda r: r.counters.store_exclusive_to_shared}
        )
        by = {row["protocol"]: row["e31"] for row in rows}
        assert set(by) == {"mesi", "msi"}

    def test_bad_machine_param_rejected(self):
        sweep = self.make(machine_grid={"warp_drive": [True]})
        with pytest.raises(ConfigError):
            sweep.run(metrics={"cycles": lambda r: r.counters.cycles})

    def test_no_metrics_rejected(self):
        with pytest.raises(ConfigError):
            self.make().run(metrics={})

    def test_deterministic(self):
        sweep = self.make(workload_grid={"sharing_frac": [0.1]})
        a = sweep.run(metrics={"cycles": lambda r: r.counters.cycles})
        b = sweep.run(metrics={"cycles": lambda r: r.counters.cycles})
        assert a == b

    def test_compile_specs_match_points(self):
        sweep = self.make(
            workload_grid={"sharing_frac": [0.0, 0.1]},
            machine_grid={"protocol": ["mesi", "msi"]},
        )
        specs = sweep.compile_specs()
        assert len(specs) == len(sweep.points())
        assert len({s.key() for s in specs}) == len(specs)  # all distinct

    def test_parallel_rows_identical(self):
        sweep = self.make(workload_grid={"sharing_frac": [0.0, 0.1]})
        metrics = {"cycles": lambda r: r.counters.cycles}
        assert sweep.run(metrics) == sweep.run(metrics, executor=ParallelExecutor(jobs=2))

    def test_warm_sweep_runs_nothing(self, tmp_path):
        """Acceptance: a warm re-run is served entirely from the per-run
        cache — engine.cache.hit counts every point, engine.runs stays 0."""
        sweep = self.make(workload_grid={"sharing_frac": [0.0, 0.1]})
        metrics = {"cycles": lambda r: r.counters.cycles}
        cache = RunCache(tmp_path)
        cold = sweep.run(metrics, cache=cache)
        with obs.session() as s:
            warm = sweep.run(metrics, cache=cache)
        assert warm == cold
        assert s.registry.counter("engine.cache.hit") == len(sweep.points())
        assert s.registry.counter("engine.runs") == 0.0

    def test_sweep_emits_span_and_engine_metrics(self):
        sweep = self.make(workload_grid={"sharing_frac": [0.0, 0.1]})
        with obs.session() as s:
            sweep.run(metrics={"cycles": lambda r: r.counters.cycles})
        (span,) = s.tracer.by_name("sweep.run")
        assert span.attrs["points"] == 2
        # Grid points route through the same engine path as campaign runs.
        assert len(s.tracer.by_name("engine.execute")) == 2
        assert s.registry.counter("engine.runs") == 2.0
