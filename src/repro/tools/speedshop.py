"""speedshop emulation: PC-sampling attribution of cycles to routines.

The paper validates Scal-Tool's MP (= Sync + Imb) estimate against
speedshop PC sampling of the barrier-related functions (``mp_barrier()``,
``__nthreads()``, ``mp_lock_try()``) and the load-imbalance functions
(``mp_slave_wait_for_work()``, ``mp_master_wait_for_slaves()``)
(Section 4.1).  Our simulator keeps the equivalent ground-truth cycle
ledger, and this module presents it the way speedshop would: as sampled
cycle counts per routine bucket, with multinomial sampling noise at a
configurable sampling period.

This is the *only* consumer of the simulator's ground truth on the
measurement side; Scal-Tool itself never sees it.

The real sampling profiler (:mod:`repro.obs.sampler`, ``scaltool
profile --lines``) renders through the same report path
(:func:`format_sampled_report` / :func:`format_sampler_profile`): one
row formatter for both tools, so the paper emulation and the live
profiler cannot drift apart in presentation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..machine.system import RunResult

__all__ = [
    "SpeedshopProfile",
    "profile_run",
    "profile_record",
    "format_sampled_report",
    "format_sampler_profile",
    "ROUTINE_BUCKETS",
]

#: Routine names reported per bucket, mirroring the functions the paper
#: lists for the MP measurement.
ROUTINE_BUCKETS: dict[str, list[str]] = {
    "compute": ["user_code"],
    "sync": ["mp_barrier", "__nthreads", "mp_lock_try"],
    "imbalance": ["mp_slave_wait_for_work", "mp_master_wait_for_slaves"],
}


@dataclass(frozen=True)
class SpeedshopProfile:
    """Sampled cycle attribution for one run."""

    total_cycles: float
    compute_cycles: float
    sync_cycles: float
    imbalance_cycles: float
    sampling_period: int
    n_samples: int

    @property
    def mp_cycles(self) -> float:
        """The paper's MP = Sync + Imb measurement."""
        return self.sync_cycles + self.imbalance_cycles

    @property
    def mp_fraction(self) -> float:
        return self.mp_cycles / self.total_cycles if self.total_cycles else 0.0

    def routine_table(self) -> list[tuple[str, float]]:
        """Per-routine cycle counts, speedshop-report style.

        Bucket cycles are split evenly across the bucket's routines; the
        real tool reports individual functions, but only bucket sums are
        meaningful for validation.
        """
        rows: list[tuple[str, float]] = []
        for bucket, cycles in (
            ("compute", self.compute_cycles),
            ("sync", self.sync_cycles),
            ("imbalance", self.imbalance_cycles),
        ):
            names = ROUTINE_BUCKETS[bucket]
            for name in names:
                rows.append((name, cycles / len(names)))
        rows.sort(key=lambda r: -r[1])
        return rows

    def format(self) -> str:
        return format_sampled_report(
            "speedshop PC-sampling profile",
            f"samples: {self.n_samples} (period {self.sampling_period} cycles)",
            f"total cycles: {self.total_cycles:,.0f}",
            self.routine_table(),
            self.total_cycles,
        )


def format_sampled_report(
    title: str,
    sample_line: str,
    total_line: str,
    rows: list[tuple[str, float]],
    total: float,
) -> str:
    """The shared speedshop-style report: title, two summary lines, then
    one ``name  value (share)`` row per routine.

    Both the paper emulation (:meth:`SpeedshopProfile.format`) and the
    live sampler (:func:`format_sampler_profile`) render through this
    single formatter — a format change lands in both or neither.
    """
    lines = [title, f"  {sample_line}", f"  {total_line}"]
    for name, value in rows:
        lines.append(f"  {name:<28s} {value:>16,.0f} ({value / max(total, 1):6.1%})")
    return "\n".join(lines)


def format_sampler_profile(profile, limit: int = 10) -> str:
    """Render a live sampling profile the way speedshop reports routines.

    ``profile`` is a :class:`repro.obs.sampler.SampleProfile` or its
    ``to_dict()`` form; rows are the hottest functions by self samples
    (the sampler's analogue of PC-sample hits per routine).
    """
    data = profile if isinstance(profile, dict) else profile.to_dict()
    n_samples = int(data.get("n_samples", 0))
    interval_ms = float(data.get("interval_s", 0.0)) * 1e3
    rows = [
        (row["func"][:28], float(row["self"]))
        for row in (data.get("functions") or [])[: max(1, limit)]
    ]
    return format_sampled_report(
        "sampler stack-sampling profile",
        f"samples: {n_samples} (interval {interval_ms:.1f} ms)",
        f"total seconds: {float(data.get('duration_s', 0.0)):,.3f}",
        rows,
        float(n_samples),
    )


def profile_record(
    record,
    sampling_period: int = 10000,
    seed: int = 0,
    exact: bool = False,
) -> SpeedshopProfile:
    """PC-sample a stored :class:`~repro.runner.records.RunRecord`.

    The record must carry ground truth (a profiled run); records handed to
    Scal-Tool have it stripped, keeping the measurement/estimation
    separation honest.
    """
    if record.ground_truth is None:
        raise ValidationError(
            "record has no ground truth: speedshop can only profile an instrumented run"
        )
    return _profile(record.ground_truth, record.counters.cycles, sampling_period, seed, exact)


def profile_run(
    result: RunResult,
    sampling_period: int = 10000,
    seed: int = 0,
    exact: bool = False,
) -> SpeedshopProfile:
    """PC-sample one run's cycle ledger.

    ``exact=True`` skips the sampling noise (infinite sampling rate);
    otherwise buckets are drawn from a multinomial with
    ``total / sampling_period`` samples, which is the statistical error a
    real PC-sampling profile carries.
    """
    return _profile(result.ground_truth, result.counters.cycles, sampling_period, seed, exact)


def _profile(gt, total: float, sampling_period: int, seed: int, exact: bool) -> SpeedshopProfile:
    if total <= 0:
        raise ValidationError("run has no cycles to profile")
    compute = total - gt.sync_cycles - gt.spin_cycles
    buckets = np.array([compute, gt.sync_cycles, gt.spin_cycles], dtype=float)
    buckets = np.clip(buckets, 0.0, None)

    if exact or sampling_period <= 0:
        sampled = buckets
        n_samples = 0
    else:
        n_samples = max(1, int(total / sampling_period))
        p = buckets / buckets.sum()
        rng = np.random.default_rng(seed)
        counts = rng.multinomial(n_samples, p)
        sampled = counts / n_samples * total

    return SpeedshopProfile(
        total_cycles=total,
        compute_cycles=float(sampled[0]),
        sync_cycles=float(sampled[1]),
        imbalance_cycles=float(sampled[2]),
        sampling_period=sampling_period,
        n_samples=n_samples,
    )
