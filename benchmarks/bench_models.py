"""Cross-model agreement bench: closed-form laws vs the decomposition.

Fits the USL and granularity models to a contention-heavy synthetic
campaign and cross-validates them against Scal-Tool's own Eq. 1-10
projection (:mod:`repro.models`).  The campaign is deliberately *not*
the default synthetic configuration: the default scales superlinearly
(aggregate cache growth), which no closed-form contention law can
represent, while the heavy-barrier variant produces the sublinear curve
both roads should agree on.

Besides the human-readable ``results/models_fit.txt``, the bench records
``results/models_fit.json`` with the comparable structural metrics (each
model's residual RMS, the cross-model spread, the agreement grade
score, the fit wall time), which ``check_regression.py`` tracks: a
change to the estimators or the fitters that silently worsens the fits
or breaks the two-roads agreement fails the regression gate.
"""

import json
import time
from pathlib import Path

import pytest

from repro.models import SpeedupDataset, compare_models
from repro.obs.diagnostics import GRADE_OK, grade_score

#: The contention-heavy synthetic configuration the bench fits.
WORKLOAD_PARAMS = {
    "barriers_per_iter": 6,
    "imbalance_amp": 0.4,
    "serial_frac": 0.3,
    "sharing_frac": 0.2,
}
S0 = 131072
COUNTS = (1, 2, 4, 8, 16)
RESULTS_DIR = Path(__file__).parent / "results"


def measure(analysis, campaign) -> dict:
    """The machine-readable view of one cross-model comparison."""
    dataset = SpeedupDataset.from_campaign(campaign)
    start = time.perf_counter()
    report = compare_models(dataset, analysis=analysis)
    fit_wall = time.perf_counter() - start
    models = {
        name: {
            "r_squared": fit["r_squared"],
            "residual_rms": fit["residual_rms"],
            "grade": fit["diagnostics"]["grade"],
        }
        for name, fit in report["models"].items()
    }
    return {
        "workload": campaign.workload,
        "workload_params": dict(sorted(WORKLOAD_PARAMS.items())),
        "s0": campaign.s0,
        "counts": list(dataset.counts),
        "fit_wall_seconds": fit_wall,
        "agreement_grade": report["grade"],
        "agreement_grade_score": float(grade_score(report["grade"])),
        "cross_model_rms": report["agreement"]["details"]["cross_model_rms"],
        "mapping": report["mapping"],
        "models": models,
    }


def run_benchmark(
    counts=COUNTS,
    cache_dir=None,
    results_dir: Path | None = None,
) -> dict:
    """Standalone entry point for ``check_regression.py``.

    Rebuilds (or loads from cache) the contention campaign, runs the
    three-model comparison, and returns the metrics dict; with
    ``results_dir`` also records the JSON baseline alongside the text
    artifact.
    """
    from repro.core import ScalTool
    from repro.runner import CampaignConfig
    from repro.runner.cache import cached_campaign
    from repro.workloads import make_workload

    workload = make_workload("synthetic", **WORKLOAD_PARAMS)
    cfg = CampaignConfig(s0=S0, processor_counts=tuple(counts))
    campaign = cached_campaign(workload, cfg, cache_dir=cache_dir)
    analysis = ScalTool(campaign).analyze()
    result = measure(analysis, campaign)
    if results_dir is not None:
        results_dir = Path(results_dir)
        results_dir.mkdir(parents=True, exist_ok=True)
        (results_dir / "models_fit.json").write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
    return result


@pytest.fixture(scope="module")
def contention_case():
    from repro.core import ScalTool
    from repro.runner import CampaignConfig
    from repro.runner.cache import cached_campaign
    from repro.workloads import make_workload

    workload = make_workload("synthetic", **WORKLOAD_PARAMS)
    cfg = CampaignConfig(s0=S0, processor_counts=COUNTS)
    campaign = cached_campaign(workload, cfg)
    return ScalTool(campaign).analyze(), campaign


def test_models_agreement(benchmark, emit, contention_case):
    from repro.viz import render_models_compare

    analysis, campaign = contention_case
    result = benchmark(measure, analysis, campaign)

    dataset = SpeedupDataset.from_campaign(campaign)
    report = compare_models(dataset, analysis=analysis)
    emit("models_fit", render_models_compare(report))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "models_fit.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )

    # The acceptance bar: with known contention injected, the USL's
    # sigma and Scal-Tool's sync+imbalance share rank the same dominant
    # bottleneck, and the two-roads agreement grades clean.
    assert result["agreement_grade"] == GRADE_OK
    mapping = result["mapping"]
    assert mapping["dominant_usl"] == "contention"
    assert mapping["dominant_scaltool"] == "sync+imb"
    usl = mapping["shares"]["usl"]
    scal = mapping["shares"]["scaltool"]
    assert usl["contention_share"] > usl["coherency_share"]
    assert scal["sync_imb_share"] > scal["l2lim_share"]

    # The decomposition reconstructs its own curve exactly at the
    # measured counts; the closed-form laws track it within the warn rms.
    assert result["models"]["scaltool"]["r_squared"] > 0.999
    assert result["cross_model_rms"] < 0.35
