"""Machine configuration validation and presets."""

import pytest

from repro.errors import ConfigError
from repro.machine.config import (
    CacheConfig,
    InterconnectConfig,
    MachineConfig,
    MemoryConfig,
    TimingConfig,
    origin2000_full,
    origin2000_scaled,
)
from repro.units import KB, MB


class TestCacheConfig:
    def test_basic_geometry(self):
        c = CacheConfig(size=4096, line_size=32, associativity=2)
        assert c.n_lines == 128
        assert c.n_sets == 64

    def test_size_string(self):
        assert CacheConfig(size="32KB").size == 32 * KB

    def test_direct_mapped(self):
        c = CacheConfig(size=1024, line_size=32, associativity=1)
        assert c.n_sets == c.n_lines == 32

    def test_fully_weird_assoc_rejected_when_sets_not_pow2(self):
        with pytest.raises(ConfigError):
            CacheConfig(size=96 * 32, line_size=32, associativity=1)

    def test_non_pow2_line_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size=4096, line_size=48)

    def test_indivisible_size_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size=1000, line_size=32, associativity=2)

    def test_zero_assoc_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size=1024, associativity=0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size=1024, replacement="mru")

    def test_scaled_halves(self):
        c = CacheConfig(size=4 * MB, line_size=32, associativity=2)
        assert c.scaled(64).size == 64 * KB

    def test_scaled_floors_at_minimum(self):
        c = CacheConfig(size=1024, line_size=32, associativity=2)
        assert c.scaled(10**6).size == 64

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            CacheConfig(size=1024).scaled(0)


class TestTimingConfig:
    def test_defaults_valid(self):
        TimingConfig()

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            TimingConfig(t_mem=-1)

    def test_zero_spin_cpi_rejected(self):
        with pytest.raises(ConfigError):
            TimingConfig(spin_cpi=0)

    def test_prefetch_factor_bounds(self):
        with pytest.raises(ConfigError):
            TimingConfig(t_prefetch_factor=0.0)
        with pytest.raises(ConfigError):
            TimingConfig(t_prefetch_factor=1.5)
        TimingConfig(t_prefetch_factor=1.0)  # disables prefetching

    def test_barrier_instructions_minimum(self):
        with pytest.raises(ConfigError):
            TimingConfig(barrier_instructions=0)


class TestInterconnectConfig:
    def test_topologies(self):
        for topo in ("hypercube", "mesh", "ring", "crossbar"):
            InterconnectConfig(topology=topo)

    def test_unknown_topology(self):
        with pytest.raises(ConfigError):
            InterconnectConfig(topology="torus")

    def test_bristle_minimum(self):
        with pytest.raises(ConfigError):
            InterconnectConfig(bristle=0)


class TestMemoryConfig:
    def test_placements(self):
        for p in ("first_touch", "round_robin", "block"):
            MemoryConfig(placement=p)

    def test_unknown_placement(self):
        with pytest.raises(ConfigError):
            MemoryConfig(placement="numa_balancing")

    def test_page_size_pow2(self):
        with pytest.raises(ConfigError):
            MemoryConfig(page_size=100)


class TestMachineConfig:
    def test_line_size_must_match(self):
        with pytest.raises(ConfigError):
            MachineConfig(
                l1=CacheConfig(size=256, line_size=32),
                l2=CacheConfig(size=4096, line_size=64),
            )

    def test_inclusion_requires_l1_smaller(self):
        with pytest.raises(ConfigError):
            MachineConfig(
                l1=CacheConfig(size=8192, line_size=32),
                l2=CacheConfig(size=4096, line_size=32),
            )

    def test_processor_minimum(self):
        with pytest.raises(ConfigError):
            MachineConfig(n_processors=0)

    def test_with_processors(self):
        cfg = MachineConfig(n_processors=2)
        assert cfg.with_processors(8).n_processors == 8
        assert cfg.n_processors == 2  # original unchanged

    def test_with_l2_size(self):
        cfg = MachineConfig()
        assert cfg.with_l2_size(64 * KB).l2.size == 64 * KB

    def test_aggregate_l2(self):
        cfg = MachineConfig(n_processors=4)
        assert cfg.aggregate_l2_bytes() == 4 * cfg.l2.size


class TestPresets:
    def test_full_matches_paper(self):
        cfg = origin2000_full(32)
        assert cfg.l1.size == 32 * KB
        assert cfg.l2.size == 4 * MB
        assert cfg.interconnect.topology == "hypercube"
        assert cfg.interconnect.bristle == 2
        assert cfg.memory.placement == "first_touch"

    def test_scaled_preserves_ratio(self):
        full = origin2000_full(8)
        scaled = origin2000_scaled(8, scale=64)
        assert scaled.l2.size == full.l2.size // 64
        assert scaled.l1.size == full.l1.size // 64
        assert scaled.line_size == full.line_size

    def test_scaled_rejects_bad_scale(self):
        with pytest.raises(ConfigError):
            origin2000_scaled(scale=0)

    def test_scaled_default_caching_arithmetic(self):
        # The T3dheat knee: 40 MB / 4 MB = 10 processors, preserved by scaling.
        cfg = origin2000_scaled(1)
        assert (40 * MB // 64) / cfg.l2.size == pytest.approx(10.0)
