"""Property-based tests: the cache model under arbitrary access streams."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.machine.cache import EXCLUSIVE, MODIFIED, SHARED, SetAssociativeCache
from repro.machine.config import CacheConfig

ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=63),  # block
        st.sampled_from(["insert", "touch", "invalidate", "downgrade"]),
        st.sampled_from([SHARED, EXCLUSIVE, MODIFIED]),
    ),
    max_size=200,
)

geometries = st.sampled_from(
    [
        (128, 32, 1, "lru"),
        (128, 32, 2, "lru"),
        (256, 32, 2, "fifo"),
        (256, 32, 4, "plru"),
        (512, 32, 2, "random"),
    ]
)


def apply_ops(cache: SetAssociativeCache, operations) -> None:
    for block, op, state in operations:
        if op == "insert":
            if not cache.contains(block):
                cache.insert(block, state)
        elif op == "touch":
            cache.touch(block)
        elif op == "invalidate":
            cache.invalidate(block)
        elif op == "downgrade":
            if cache.contains(block):
                cache.downgrade(block)


@settings(max_examples=60, deadline=None)
@given(geometry=geometries, operations=ops)
def test_invariants_always_hold(geometry, operations):
    size, line, assoc, policy = geometry
    cache = SetAssociativeCache(
        CacheConfig(size=size, line_size=line, associativity=assoc, replacement=policy)
    )
    apply_ops(cache, operations)
    cache.check_invariants()


@settings(max_examples=60, deadline=None)
@given(geometry=geometries, operations=ops)
def test_capacity_never_exceeded(geometry, operations):
    size, line, assoc, policy = geometry
    cfg = CacheConfig(size=size, line_size=line, associativity=assoc, replacement=policy)
    cache = SetAssociativeCache(cfg)
    apply_ops(cache, operations)
    assert len(cache) <= cfg.n_lines
    for s in range(cfg.n_sets):
        assert len(cache.set_contents(s)) <= assoc


@settings(max_examples=60, deadline=None)
@given(operations=ops)
def test_inserted_block_resident_until_removed(operations):
    """A block inserted into an under-full set stays until invalidated/evicted."""
    cache = SetAssociativeCache(CacheConfig(size=256, line_size=32, associativity=2))
    present: set[int] = set()
    for block, op, state in operations:
        if op == "insert" and not cache.contains(block):
            evicted = cache.insert(block, state)
            present.add(block)
            if evicted:
                present.discard(evicted.block)
        elif op == "invalidate":
            cache.invalidate(block)
            present.discard(block)
        elif op == "touch":
            cache.touch(block)
        elif op == "downgrade" and cache.contains(block):
            cache.downgrade(block)
    assert present == set(cache.resident_blocks())


@settings(max_examples=40, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=100),
)
def test_lru_full_assoc_stack_property(blocks):
    """In a fully-associative LRU cache, the k most recently used distinct
    blocks are always resident (k = capacity)."""
    assoc = 4
    cache = SetAssociativeCache(
        CacheConfig(size=assoc * 32, line_size=32, associativity=assoc)
    )
    # make it fully associative: one set (n_sets must be power of two = 1)
    recent: list[int] = []
    for b in blocks:
        if cache.contains(b):
            cache.touch(b)
        else:
            cache.insert(b, SHARED)
        if b in recent:
            recent.remove(b)
        recent.append(b)
        expected = set(recent[-assoc:])
        assert expected == set(cache.resident_blocks())
